"""Science validation: simulated halo abundance vs Press-Schechter.

The known systematics apply: PS overpredicts low-mass halos near the
16-particle resolution limit and underpredicts the massive tail
(Sheth-Tormen fixes that); order-of-magnitude agreement across the
resolved range is the expected outcome for a PM + FoF pipeline.
"""

import numpy as np
import pytest

from repro.galics import find_halos
from repro.galics.press_schechter import (
    DELTA_C,
    expected_halo_counts,
    lagrangian_radius,
    press_schechter_dndlnm,
    sigma_of_mass,
)
from repro.grafic import PowerSpectrum, make_single_level_ic
from repro.ramses import LCDM_WMAP, RamsesRun, RunConfig, Units


@pytest.fixture(scope="module")
def spectrum():
    return PowerSpectrum(LCDM_WMAP)


class TestAnalytics:
    def test_lagrangian_radius_monotone(self, spectrum):
        r = lagrangian_radius(np.array([1e12, 1e13, 1e14]), LCDM_WMAP)
        assert np.all(np.diff(r) > 0)
        # 1e14 Msun/h encloses ~ 6-8 Mpc/h at mean density
        assert 5.0 < r[-1] < 10.0

    def test_sigma_decreasing_in_mass(self, spectrum):
        sig = sigma_of_mass(np.array([1e12, 1e13, 1e14, 1e15]), spectrum)
        assert np.all(np.diff(sig) < 0)

    def test_dndlnm_positive_and_cut_off(self, spectrum):
        masses = np.logspace(12, 16, 9)
        dn = press_schechter_dndlnm(masses, spectrum, aexp=1.0)
        assert np.all(dn > 0)
        # exponential cutoff: the last decade falls much faster than the first
        assert dn[-1] / dn[-2] < dn[1] / dn[0]

    def test_growth_boosts_abundance_at_high_mass(self, spectrum):
        m = np.array([5e14])
        early = press_schechter_dndlnm(m, spectrum, aexp=0.5)
        late = press_schechter_dndlnm(m, spectrum, aexp=1.0)
        assert late[0] > early[0]

    def test_expected_counts_volume_scaling(self, spectrum):
        edges = np.array([1e13, 1e14])
        small = expected_halo_counts(edges, spectrum, 50.0)
        large = expected_halo_counts(edges, spectrum, 100.0)
        assert large[0] == pytest.approx(8.0 * small[0], rel=1e-9)

    def test_input_validation(self, spectrum):
        with pytest.raises(ValueError):
            press_schechter_dndlnm(np.array([-1.0]), spectrum)
        with pytest.raises(ValueError):
            expected_halo_counts(np.array([1e14, 1e13]), spectrum, 100.0)


class TestAgainstSimulation:
    @pytest.fixture(scope="class")
    def measured(self):
        ic = make_single_level_ic(32, 100.0, LCDM_WMAP, a_start=0.05, seed=42)
        snap = RamsesRun(ic, RunConfig(a_end=1.0, n_steps=32,
                                       output_aexp=(1.0,))).run().final
        catalog = find_halos(snap.particles, snap.aexp, min_particles=16)
        units = Units(100.0, omega_m=LCDM_WMAP.omega_m)
        return catalog.masses() * units.total_mass_msun_h

    def test_total_abundance_order_of_magnitude(self, measured, spectrum):
        edges = np.array([measured.min() * 0.99, measured.max() * 1.01])
        expected = expected_halo_counts(edges, spectrum, 100.0)[0]
        assert expected / 4.0 < len(measured) < expected * 4.0

    def test_shape_per_bin(self, measured, spectrum):
        edges = np.logspace(np.log10(measured.min() * 0.99),
                            np.log10(measured.max() * 1.01), 4)
        counts, _ = np.histogram(measured, bins=edges)
        expected = expected_halo_counts(edges, spectrum, 100.0)
        for got, want in zip(counts, expected):
            assert want / 6.0 < max(got, 0.5) < want * 6.0

    def test_abundance_declines_with_mass(self, measured):
        edges = np.logspace(np.log10(measured.min() * 0.99),
                            np.log10(measured.max() * 1.01), 4)
        counts, _ = np.histogram(measured, bins=edges)
        assert counts[0] > counts[-1]
