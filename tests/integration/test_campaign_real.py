"""End-to-end REAL-mode campaign: actual physics through the middleware.

The paper's full workflow at toy scale: part 1 runs a real PM simulation
and a real FoF halo finder on a SeD; the client reads the genuine halo
catalog file; part 2 re-simulates the selected halos with real multi-level
ICs; results come back as genuine tarballs.  Every byte crosses the same
DIET code paths the MODELED benchmarks use.
"""

import os
import tarfile

import numpy as np
import pytest

from repro.galics import read_halo_catalog
from repro.ramses import read_snapshot
from repro.services import (
    CampaignConfig,
    ExecutionMode,
    decode_zoom2,
    run_campaign,
)


@pytest.fixture(scope="module")
def real_campaign(tmp_path_factory):
    workdir = str(tmp_path_factory.mktemp("real-campaign"))
    config = CampaignConfig(
        n_sub_simulations=6,
        resolution=32,             # 32768 particles: seconds, not hours
        boxsize_mpc_h=50,
        n_zoom_levels=1,
        mode=ExecutionMode.REAL,
        workdir=workdir,
        real_n_steps=10,
        real_a_end=0.8,
        seed=13)
    return run_campaign(config), workdir


class TestRealCampaign:
    def test_all_succeed(self, real_campaign):
        result, _ = real_campaign
        assert result.part1_trace.status == 0
        assert len(result.part2_traces) == 6
        assert all(t.status == 0 for t in result.part2_traces)

    def test_zoom_centers_come_from_real_halos(self, real_campaign):
        """The client decoded the part-1 catalog, not synthetic centres."""
        result, workdir = real_campaign
        catalog_path = os.path.join(workdir, "zoom1-0001", "halo_catalog.dat")
        assert os.path.exists(catalog_path)
        catalog = read_halo_catalog(catalog_path)
        assert len(catalog) >= 1
        halo_centers = {tuple(np.round(h.center, 6)) for h in catalog}
        for center in result.zoom_centers:
            assert tuple(np.round(center, 6)) in halo_centers

    def test_tarballs_contain_real_outputs(self, real_campaign):
        result, workdir = real_campaign
        job_dirs = sorted(d for d in os.listdir(workdir)
                          if d.startswith("zoom2-"))
        assert len(job_dirs) == 6
        tar_path = os.path.join(workdir, job_dirs[0], "results.tar.gz")
        with tarfile.open(tar_path) as tar:
            assert "halo_catalog.dat" in tar.getnames()

    def test_zoom_snapshot_is_multi_mass(self, real_campaign):
        """The re-simulation genuinely carries refined particles."""
        _, workdir = real_campaign
        job_dirs = sorted(d for d in os.listdir(workdir)
                          if d.startswith("zoom2-"))
        snap_dir = os.path.join(workdir, job_dirs[0], "output_00001")
        _, parts = read_snapshot(snap_dir, 1)
        assert len(np.unique(parts.level)) == 2
        masses = np.unique(np.round(parts.mass, 12))
        assert len(masses) == 2
        assert masses[1] / masses[0] == pytest.approx(8.0, rel=1e-6)

    def test_simulated_time_still_modeled(self, real_campaign):
        """REAL mode charges model time for the toy workload, so the
        simulated clock advanced by (small) solve durations."""
        result, _ = real_campaign
        for t in result.part2_traces:
            assert t.solve_duration > 0
        # toy 8^3 workloads are far quicker than the paper's 128^3
        assert result.part2_mean_duration < 600

    def test_middleware_metrics_present(self, real_campaign):
        result, _ = real_campaign
        assert len(result.finding_times()) == 7      # part1 + 6
        assert all(f > 0 for f in result.finding_times())
        assert max(result.latencies()) >= min(result.latencies())
