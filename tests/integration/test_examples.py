"""Smoke tests: every shipped example runs green from a fresh process."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, timeout: float = 300.0) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "1h 15min 11s" in out
        assert "[9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 10]" in out
        assert "49.8 ms" in out

    def test_gridrpc_api_tour(self):
        out = run_example("gridrpc_api_tour.py")
        assert "demoSolve" in out
        assert "status=0" in out
        assert "finding time" in out

    def test_plugin_scheduler(self):
        out = run_example("plugin_scheduler.py")
        assert "mct" in out
        assert "paper's prediction holds" in out

    def test_nbody_galaxy_pipeline(self):
        out = run_example("nbody_galaxy_pipeline.py")
        assert "halos" in out
        assert "Merger tree" in out
        assert "GalaxyMaker" in out

    def test_custom_grid(self):
        out = run_example("custom_grid.py")
        assert "GoDIET" in out
        assert "12 zoom simulations completed" in out

    def test_shock_tube(self):
        out = run_example("shock_tube.py")
        assert "density profile" in out
        assert "rarefaction" in out

    def test_zoom_campaign_real(self):
        out = run_example("zoom_campaign_real.py")
        assert "dark-matter halos" in out
        assert "result tarball" in out
        assert "status 0" in out
