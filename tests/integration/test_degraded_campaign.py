"""The full 100-zoom campaign under injected SeD failures.

End-to-end acceptance for the fault-tolerance stack: seeded crashes +
heartbeat deregistration + checkpointing + client resubmission must
complete every zoom, deterministically, at a makespan strictly above the
zero-failure baseline.
"""

import pytest

from repro.services import CampaignConfig, FailurePlan, run_campaign


def degraded_config(n_crashes=2, n_sub=100):
    return CampaignConfig(n_sub_simulations=n_sub, seed=2007,
                          failures=FailurePlan(n_crashes=n_crashes))


def fingerprint(result):
    """Everything observable about a campaign, for bit-determinism checks."""
    report = result.failure_report
    return (
        result.total_elapsed,
        tuple(result.statuses),
        tuple(t.completed_at for t in result.part2_traces),
        tuple(sorted(result.requests_per_sed().items())),
        report.resubmissions,
        report.work_lost,
        report.work_recovered,
        report.checkpoints_written,
        tuple((o.name, o.down_at, o.up_at) for o in report.outages),
        tuple(report.deregistrations),
        tuple(report.recoveries),
    )


class TestDegradedCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(degraded_config())

    def test_all_zooms_complete_despite_crashes(self, result):
        report = result.failure_report
        assert report is not None
        assert len(report.outages) >= 2          # both victims crashed...
        assert len(report.recoveries) >= 2       # ...and rejoined
        assert len(result.statuses) == 100
        assert all(s == 0 for s in result.statuses)
        assert len(result.completed_part2_traces) == 100

    def test_failures_cost_makespan_and_work(self, result):
        baseline = run_campaign(CampaignConfig(n_sub_simulations=100,
                                               seed=2007))
        assert result.total_elapsed > baseline.total_elapsed
        report = result.failure_report
        assert report.resubmissions > 0
        assert report.work_lost > 0.0
        assert report.checkpoints_written > 0

    def test_heartbeat_deregistered_the_victims(self, result):
        report = result.failure_report
        victims = {o.name for o in report.outages}
        assert victims <= set(report.deregistrations)
        assert victims <= set(report.recoveries)

    def test_survivors_absorb_the_victims_jobs(self, result):
        report = result.failure_report
        victims = {o.name for o in report.outages}
        per_sed = {}
        for trace in result.completed_part2_traces:
            per_sed[trace.sed_name] = per_sed.get(trace.sed_name, 0) + 1
        # every zoom landed somewhere, and the survivors carried extra load
        assert sum(per_sed.values()) == 100
        survivors = {s: n for s, n in per_sed.items() if s not in victims}
        assert max(survivors.values()) > 100 // 11

    def test_bit_deterministic(self, result):
        again = run_campaign(degraded_config())
        assert fingerprint(again) == fingerprint(result)

    def test_crash_count_scales_damage(self):
        one = run_campaign(degraded_config(n_crashes=1, n_sub=40))
        four = run_campaign(degraded_config(n_crashes=4, n_sub=40))
        assert all(s == 0 for s in one.statuses + four.statuses)
        assert len(four.failure_report.outages) > \
            len(one.failure_report.outages)
