"""Scientific integration: the complete zoom workflow of §3, no middleware.

Parent run -> HaloMaker -> Lagrangian region -> multi-level ICs -> zoom run
-> HaloMaker/TreeMaker/GalaxyMaker on the refined snapshots.
"""

import networkx as nx
import numpy as np
import pytest

from repro.galics import GalaxyMaker, build_merger_tree, find_halos
from repro.grafic import make_single_level_ic
from repro.ramses import (
    LCDM_WMAP,
    RamsesRun,
    RunConfig,
    ZoomSpec,
    lagrangian_region,
    resolution_gain,
    run_zoom,
)


@pytest.fixture(scope="module")
def parent():
    ic = make_single_level_ic(16, 50.0, LCDM_WMAP, a_start=0.05, seed=11)
    cfg = RunConfig(a_end=1.0, n_steps=20, output_aexp=(0.4, 0.6, 0.8, 1.0))
    result = RamsesRun(ic, cfg).run()
    catalogs = [find_halos(s.particles, s.aexp, min_particles=8)
                for s in result.snapshots]
    return ic, result, catalogs


class TestParentRun:
    def test_halos_form_and_grow(self, parent):
        _, _, catalogs = parent
        assert len(catalogs[-1]) >= 3
        assert catalogs[-1][0].mass > catalogs[1][0].mass if len(catalogs[1]) else True

    def test_merger_tree_healthy(self, parent):
        _, _, catalogs = parent
        nonempty = [c for c in catalogs if len(c)]
        tree = build_merger_tree(nonempty)
        assert nx.is_directed_acyclic_graph(tree.graph)
        # the most massive final halo has a progenitor line
        branch = tree.main_branch(tree.roots()[0])
        assert len(branch) >= 2

    def test_galaxies_form(self, parent):
        _, _, catalogs = parent
        nonempty = [c for c in catalogs if len(c)]
        tree = build_merger_tree(nonempty)
        galaxy_catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        assert galaxy_catalogs[-1].total_stellar_mass() > 0


class TestZoomResimulation:
    @pytest.fixture(scope="class")
    def zoom(self, parent):
        ic, result, catalogs = parent
        halo = catalogs[-1][0]
        region = lagrangian_region(halo.member_ids, 16)
        spec = ZoomSpec(center=tuple(region.center), n_levels=2,
                        region_half_size=region.half_size, n_coarse=16,
                        boxsize_mpc_h=50.0)
        cfg = RunConfig(a_end=1.0, n_steps=20, output_aexp=(1.0,))
        return halo, region, run_zoom(ic, spec, cfg)

    def test_mass_resolution_gain(self, parent, zoom):
        _, result, _ = parent
        halo, region, zoom_result = zoom
        gain = resolution_gain(result.final.particles,
                               zoom_result.final.particles, region)
        assert gain == pytest.approx(64.0)   # 8^2 for two levels

    def test_rezoomed_halo_found_near_parent_position(self, parent, zoom):
        halo, region, zoom_result = zoom
        snap = zoom_result.final
        catalog = find_halos(snap.particles, snap.aexp, min_particles=8)
        assert len(catalog) >= 1
        offsets = []
        for zh in catalog:
            d = np.abs(zh.center - halo.center)
            d = np.minimum(d, 1.0 - d)
            offsets.append(float(np.sqrt((d ** 2).sum())))
        # mode-matched ICs: a halo re-forms within ~2 coarse cells
        assert min(offsets) < 2.0 / 16

    def test_more_particles_in_rezoomed_halo(self, parent, zoom):
        halo, region, zoom_result = zoom
        snap = zoom_result.final
        catalog = find_halos(snap.particles, snap.aexp, min_particles=8)
        best = max(catalog, key=lambda h: h.n_particles)
        assert best.n_particles > halo.n_particles

    def test_amr_refines_deeper_in_zoom(self, parent, zoom):
        _, result, _ = parent
        _, _, zoom_result = zoom
        assert (zoom_result.final.amr.deepest_refined_level
                >= result.final.amr.deepest_refined_level)
