"""Property-based tests for CIC and the Poisson solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ramses import cic_deposit, cic_interpolate, poisson_solve
from repro.ramses.poisson import gradient_spectral


@st.composite
def particle_clouds(draw):
    seed = draw(st.integers(0, 2 ** 31))
    n_particles = draw(st.integers(1, 500))
    n_grid = draw(st.sampled_from([4, 8, 16]))
    rng = np.random.default_rng(seed)
    x = rng.random((n_particles, 3))
    mass = rng.exponential(1.0, n_particles) + 1e-12
    return x, mass, n_grid


@given(particle_clouds())
@settings(max_examples=60, deadline=None)
def test_cic_conserves_mass(cloud):
    x, mass, n = cloud
    grid = cic_deposit(x, mass, n)
    assert grid.sum() == pytest.approx(mass.sum(), rel=1e-10)
    assert np.all(grid >= 0)


@given(particle_clouds())
@settings(max_examples=40, deadline=None)
def test_cic_gather_scatter_adjoint(cloud):
    """<f, deposit(m)> == <interp(f), m> for random fields: the adjoint
    identity that makes the PM force momentum-conserving."""
    x, mass, n = cloud
    rng = np.random.default_rng(123)
    field = rng.standard_normal((n, n, n))
    lhs = np.sum(field * cic_deposit(x, mass, n))
    rhs = np.sum(mass * cic_interpolate(field, x))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-12)


@given(particle_clouds())
@settings(max_examples=40, deadline=None)
def test_cic_interpolation_bounded(cloud):
    """CIC is a convex combination: interpolated values stay in range."""
    x, _, n = cloud
    rng = np.random.default_rng(7)
    field = rng.random((n, n, n))
    vals = cic_interpolate(field, x)
    assert np.all(vals >= field.min() - 1e-12)
    assert np.all(vals <= field.max() + 1e-12)


@given(st.integers(0, 2 ** 31), st.sampled_from([8, 16]))
@settings(max_examples=30, deadline=None)
def test_poisson_solution_is_zero_mean_and_finite(seed, n):
    rng = np.random.default_rng(seed)
    src = rng.standard_normal((n, n, n))
    phi = poisson_solve(src)
    assert np.all(np.isfinite(phi))
    assert abs(phi.mean()) < 1e-12


@given(st.integers(0, 2 ** 31), st.sampled_from([8, 16]),
       st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=30, deadline=None)
def test_poisson_linearity(seed, n, scale):
    rng = np.random.default_rng(seed)
    src = rng.standard_normal((n, n, n))
    assert np.allclose(poisson_solve(src * scale), poisson_solve(src) * scale,
                       rtol=1e-10, atol=1e-12)


@given(st.integers(0, 2 ** 31), st.sampled_from([8, 16]))
@settings(max_examples=20, deadline=None)
def test_gradient_of_sum_is_sum_of_gradients(seed, n):
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((n, n, n))
    g = rng.standard_normal((n, n, n))
    assert np.allclose(gradient_spectral(f + g),
                       gradient_spectral(f) + gradient_spectral(g),
                       atol=1e-10)


@given(st.integers(0, 2 ** 31), st.sampled_from([8, 16]))
@settings(max_examples=20, deadline=None)
def test_grid_force_sums_to_zero(seed, n):
    """Momentum conservation on the grid for arbitrary sources."""
    from repro.ramses import acceleration_from_source
    rng = np.random.default_rng(seed)
    src = rng.standard_normal((n, n, n))
    _, acc = acceleration_from_source(src)
    total = acc.sum(axis=(0, 1, 2))
    assert np.all(np.abs(total) < 1e-8 * np.abs(acc).max() * n ** 3 + 1e-12)
