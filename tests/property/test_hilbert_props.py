"""Property-based tests for the Peano-Hilbert curve."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ramses import hilbert_decode, hilbert_encode

levels = st.integers(min_value=1, max_value=12)


@st.composite
def coords_at_level(draw):
    level = draw(levels)
    n = 1 << level
    size = draw(st.integers(min_value=1, max_value=64))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    return level, (rng.integers(0, n, size), rng.integers(0, n, size),
                   rng.integers(0, n, size))


@given(coords_at_level())
@settings(max_examples=60, deadline=None)
def test_encode_decode_roundtrip(case):
    level, (ix, iy, iz) = case
    jx, jy, jz = hilbert_decode(hilbert_encode(ix, iy, iz, level), level)
    assert np.array_equal(ix, jx)
    assert np.array_equal(iy, jy)
    assert np.array_equal(iz, jz)


@given(coords_at_level())
@settings(max_examples=60, deadline=None)
def test_keys_in_range(case):
    level, (ix, iy, iz) = case
    keys = hilbert_encode(ix, iy, iz, level)
    assert np.all(keys >= 0)
    assert np.all(keys < np.int64(1) << np.int64(3 * level))


@given(levels.filter(lambda l: l <= 5),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30, deadline=None)
def test_consecutive_keys_adjacent_cells(level, seed):
    """Hilbert locality: |key_i+1 - key_i| == 1 => cells share a face."""
    rng = np.random.default_rng(seed)
    n_keys = (1 << level) ** 3
    start = int(rng.integers(0, max(n_keys - 64, 1)))
    keys = np.arange(start, min(start + 64, n_keys), dtype=np.int64)
    x, y, z = hilbert_decode(keys, level)
    manhattan = np.abs(np.diff(x)) + np.abs(np.diff(y)) + np.abs(np.diff(z))
    assert np.all(manhattan == 1)


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=4, deadline=None)
def test_bijection_small_levels(level):
    n = 1 << level
    g = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    keys = hilbert_encode(g[0].ravel(), g[1].ravel(), g[2].ravel(), level)
    assert len(np.unique(keys)) == n ** 3
