"""Property-based tests for units and cosmology invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ramses import Cosmology, Units

cosmologies = st.builds(
    Cosmology,
    omega_m=st.floats(min_value=0.1, max_value=1.0),
    omega_l=st.floats(min_value=0.0, max_value=0.9),
    h=st.floats(min_value=0.5, max_value=0.9),
)


@given(cosmologies, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_age_and_growth_monotone(cosmo, a):
    earlier = a * 0.5
    assert cosmo.age(earlier) < cosmo.age(a)
    assert float(cosmo.growth_factor(earlier)) < float(cosmo.growth_factor(a))


@given(cosmologies, st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_a_of_t_round_trip(cosmo, a):
    assert cosmo.a_of_t(cosmo.age(a)) == pytest.approx(a, rel=1e-6)


@given(cosmologies)
@settings(max_examples=30, deadline=None)
def test_growth_normalized_and_omegas_partition(cosmo):
    assert float(cosmo.growth_factor(1.0)) == pytest.approx(1.0)
    assert cosmo.omega_m + cosmo.omega_l + cosmo.omega_k == pytest.approx(1.0)


@given(st.floats(min_value=10.0, max_value=1000.0),
       st.floats(min_value=0.1, max_value=1.0),
       st.integers(min_value=2, max_value=512))
@settings(max_examples=40, deadline=None)
def test_units_mass_partition(boxlen, omega_m, n_side):
    units = Units(boxlen, omega_m=omega_m)
    n = n_side ** 3
    assert (units.particle_mass_msun_h(n) * n
            == pytest.approx(units.total_mass_msun_h, rel=1e-12))


@given(st.floats(min_value=10.0, max_value=1000.0),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_units_length_round_trip(boxlen, x):
    units = Units(boxlen)
    assert units.from_mpc_h(units.to_mpc_h(x)) == pytest.approx(x, abs=1e-12)
