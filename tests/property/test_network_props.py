"""Property-based tests for routing and the transfer-time contract.

Covers the guarantees the middleware layers lean on:

- ``route(a, b)`` is the exact reverse of ``route(b, a)`` (symmetric cache);
- routing is deterministic: rebuilding an identical topology yields
  identical routes for every pair (ties broken stably);
- ``connect()`` invalidates the route cache — a better link added after a
  lookup is picked up by the next lookup;
- on an uncontended, unshared route, the duration charged by ``transfer``
  agrees *exactly* (``==``, not approx) with ``transfer_time`` — the
  estimate SeDs advertise is the time the wire then charges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Host, Link, Network

# -- topology specs ------------------------------------------------------------------
#
# A spec is pure data so the same spec can be built twice into two
# independent engines: (parent links of a random tree, extra edges,
# per-edge latencies).  Connectivity is guaranteed by the tree part.

LATENCIES = st.floats(min_value=1e-3, max_value=5e-2,
                      allow_nan=False, allow_infinity=False)


@st.composite
def topology_specs(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    parents = [draw(st.integers(min_value=0, max_value=i - 1))
               for i in range(1, n)]
    n_extra = draw(st.integers(min_value=0, max_value=4))
    extras = [(draw(st.integers(min_value=0, max_value=n - 1)),
               draw(st.integers(min_value=0, max_value=n - 1)))
              for _ in range(n_extra)]
    extras = [(a, b) for a, b in extras if a != b]
    lats = [draw(LATENCIES) for _ in range(len(parents) + len(extras))]
    return n, parents, extras, lats


def build(spec, shared=False):
    n, parents, extras, lats = spec
    engine = Engine()
    net = Network(engine)
    for i in range(n):
        net.add_host(Host(engine, f"h{i}"))
    it = iter(lats)
    edges = [(i + 1, p) for i, p in enumerate(parents)] + list(extras)
    for k, (a, b) in enumerate(edges):
        # Parallel edges between one pair are fine: connect() keeps both
        # and routing picks the cheaper one deterministically.
        net.connect(f"h{a}", f"h{b}",
                    Link(engine, f"l{k}", next(it), 1e6, shared=shared))
    return engine, net


@given(topology_specs(), st.data())
@settings(max_examples=60, deadline=None)
def test_route_symmetric(spec, data):
    _, net = build(spec)
    n = spec[0]
    a = data.draw(st.integers(min_value=0, max_value=n - 1), label="src")
    b = data.draw(st.integers(min_value=0, max_value=n - 1), label="dst")
    fwd = net.route(f"h{a}", f"h{b}")
    back = net.route(f"h{b}", f"h{a}")
    assert [l.name for l in back] == [l.name for l in reversed(fwd)]


@given(topology_specs())
@settings(max_examples=40, deadline=None)
def test_route_deterministic_across_rebuilds(spec):
    _, net1 = build(spec)
    _, net2 = build(spec)
    n = spec[0]
    for a in range(n):
        for b in range(n):
            r1 = [l.name for l in net1.route(f"h{a}", f"h{b}")]
            r2 = [l.name for l in net2.route(f"h{a}", f"h{b}")]
            assert r1 == r2


@given(topology_specs(), st.data())
@settings(max_examples=40, deadline=None)
def test_connect_invalidates_route_cache(spec, data):
    engine, net = build(spec)
    n = spec[0]
    a = data.draw(st.integers(min_value=0, max_value=n - 1), label="src")
    b = data.draw(st.integers(min_value=0, max_value=n - 1), label="dst")
    if a == b:
        return
    net.route(f"h{a}", f"h{b}")  # prime the cache
    # A direct link cheaper than any existing path (every drawn latency is
    # >= 1e-3) must win the very next lookup, both ways round.
    net.connect(f"h{a}", f"h{b}", Link(engine, "shortcut", 1e-6, 1e6))
    assert [l.name for l in net.route(f"h{a}", f"h{b}")] == ["shortcut"]
    assert [l.name for l in net.route(f"h{b}", f"h{a}")] == ["shortcut"]


@given(topology_specs(), st.data(),
       st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=60, deadline=None)
def test_transfer_matches_transfer_time_uncontended(spec, data, nbytes):
    engine, net = build(spec, shared=False)
    n = spec[0]
    a = data.draw(st.integers(min_value=0, max_value=n - 1), label="src")
    b = data.draw(st.integers(min_value=0, max_value=n - 1), label="dst")
    predicted = net.transfer_time(f"h{a}", f"h{b}", nbytes)

    def xfer():
        duration = yield from net.transfer(f"h{a}", f"h{b}", nbytes)
        return duration

    charged = engine.run_process(xfer())
    assert charged == predicted  # exact, not approx: same arithmetic
    assert engine.now == predicted
