"""The optimized kernel must replay the recorded event streams exactly.

PR 3 rebuilt the kernel hot path (Timeout fast-path, inlined dispatch,
pre-bound interceptor chains, route precompute, buffered trace stamps).
None of that is allowed to change *what happens*: these tests re-run the
seeded 100-zoom campaign and the E11 degraded campaign with
:attr:`Engine.event_log` enabled and diff the full dispatch stream —
``(time, priority, seq, kind, name)`` per event — against references
recorded before the optimizations (see ``kernel_reference.py``).

A mismatch prints the first diverging record, which is usually enough to
identify the fast path that changed scheduling order.
"""

import json

import pytest

from . import kernel_reference as ref


def _check(slug: str, **overrides) -> None:
    with open(ref.reference_path(slug)) as fh:
        expected = json.load(fh)
    workload = dict(ref.WORKLOADS[slug], **overrides)
    stream, final_time = ref.capture_stream(**workload)
    got = ref.digest(stream, final_time)
    assert got["n_events"] == expected["n_events"], (
        f"event count changed: {got['n_events']} != {expected['n_events']}")
    assert got["final_time"] == expected["final_time"], (
        f"final simulated time changed: {got['final_time']} != "
        f"{expected['final_time']}")
    if got["sha256"] != expected["sha256"]:
        # Locate the divergence for a useful failure message.
        for i, line in enumerate(expected["head"]):
            have = ref.record_line(stream[i]) if i < len(stream) else "<none>"
            assert have == line, f"stream diverges at event {i}: {have} != {line}"
        for i, line in enumerate(expected["tail"]):
            j = expected["n_events"] - len(expected["tail"]) + i
            have = ref.record_line(stream[j]) if j < len(stream) else "<none>"
            assert have == line, f"stream diverges at event {j}: {have} != {line}"
        pytest.fail("event stream digest changed (head/tail match: the "
                    "divergence is in the middle of the stream)")


def test_campaign_event_stream_is_bit_identical():
    """Seeded 100-zoom campaign: same total order as the recorded kernel."""
    _check("campaign")


def test_degraded_campaign_event_stream_is_bit_identical():
    """E11 (2 crashes): failure/recovery machinery replays exactly too."""
    _check("degraded")


def test_disabled_tracing_replays_identical_stream():
    """observe=False must replay the observe=True reference bit-for-bit:
    span/metrics recording is pure bookkeeping that schedules no events, so
    turning it off cannot change the total order either."""
    _check("campaign", observe=False)


def test_volatile_data_grid_replays_identical_stream():
    """Wiring the data-manager grid with every argument still volatile must
    replay the no-grid reference bit-for-bit: catalogs, managers and byte
    counters are pure bookkeeping until a profile opts into persistence."""
    _check("campaign", data_policy="volatile")


def test_volatile_data_grid_replays_degraded_stream():
    """Same invariant under failures: the data managers' crash hooks
    (catalog cleanup, NFS reservation release) run inside the existing
    crash event and schedule nothing new."""
    _check("degraded", data_policy="volatile")
