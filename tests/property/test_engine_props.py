"""Property-based tests for the discrete-event kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Resource, Store


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_time_order(delays):
    engine = Engine()
    fired = []

    def waiter(d):
        yield engine.timeout(d)
        fired.append(engine.now)

    for d in delays:
        engine.process(waiter(d))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=20),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity_and_serves_all(durations, capacity):
    engine = Engine()
    res = Resource(engine, capacity=capacity)
    active = {"n": 0, "max": 0, "served": 0}

    def job(d):
        req = yield from res.acquire()
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield engine.timeout(d)
        active["n"] -= 1
        active["served"] += 1
        res.release(req)

    for d in durations:
        engine.process(job(d))
    engine.run()
    assert active["max"] <= capacity
    assert active["served"] == len(durations)
    # work conservation: makespan >= total work / capacity
    assert engine.now >= sum(durations) / capacity - 1e-9


@given(st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_is_fifo(items):
    engine = Engine()
    store = Store(engine)
    received = []

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    engine.process(consumer())
    for item in items:
        store.put(item)
    engine.run()
    assert received == items


@given(st.integers(0, 2 ** 31), st.integers(min_value=2, max_value=30))
@settings(max_examples=30, deadline=None)
def test_run_is_deterministic(seed, n_procs):
    def execute():
        rng = np.random.default_rng(seed)
        engine = Engine()
        log = []

        def worker(tag, delays):
            for d in delays:
                yield engine.timeout(float(d))
                log.append((round(engine.now, 9), tag))

        for i in range(n_procs):
            engine.process(worker(i, rng.random(3)))
        engine.run()
        return log

    assert execute() == execute()
