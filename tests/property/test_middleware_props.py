"""Property-based tests for profiles, schedulers and the namelist parser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BaseType,
    CompositeType,
    DefaultPolicy,
    EstimationVector,
    MCTPolicy,
    ProfileDesc,
    ProfileError,
    SchedulingContext,
    scalar_desc,
)
from repro.core.scheduling import EST_NBJOBS, EST_SPEED, EST_TCOMP
from repro.ramses import format_namelist, parse_namelist
from repro.ramses.namelist import Namelist


# -- profile indices --------------------------------------------------------------

@given(st.integers(-3, 8), st.integers(-3, 8), st.integers(-3, 8))
@settings(max_examples=100, deadline=None)
def test_profile_desc_index_contract(last_in, last_inout, last_out):
    """ProfileDesc accepts exactly -1 <= in <= inout <= out."""
    valid = -1 <= last_in <= last_inout <= last_out
    if valid:
        desc = ProfileDesc("svc", last_in, last_inout, last_out)
        assert desc.n_args == last_out + 1
        dirs = [desc.direction(i).value for i in range(desc.n_args)]
        assert dirs == sorted(dirs, key=["IN", "INOUT", "OUT"].index)
    else:
        with pytest.raises(ProfileError):
            ProfileDesc("svc", last_in, last_inout, last_out)


# -- scheduler work conservation ----------------------------------------------------

@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=300))
@settings(max_examples=50, deadline=None)
def test_default_policy_work_conservation(n_seds, n_requests):
    """Every request is placed, and counts differ by at most one."""
    policy = DefaultPolicy()
    ctx = SchedulingContext()
    cands = [EstimationVector(f"s{i:02d}", {EST_SPEED: 1.0})
             for i in range(n_seds)]
    for _ in range(n_requests):
        chosen = policy.choose(cands, ctx)
        assert chosen is not None
        ctx.note_dispatch(chosen.sed_name)
    counts = [ctx.dispatched.get(f"s{i:02d}", 0) for i in range(n_seds)]
    assert sum(counts) == n_requests
    assert max(counts) - min(counts) <= 1


@given(st.lists(st.floats(min_value=1.0, max_value=100.0),
                min_size=2, max_size=12),
       st.integers(min_value=10, max_value=150))
@settings(max_examples=40, deadline=None)
def test_mct_distributes_inversely_to_job_time(times, n_requests):
    """MCT gives each SeD a share ~ proportional to its speed."""
    policy = MCTPolicy()
    ctx = SchedulingContext()
    cands = [EstimationVector(f"s{i:02d}", {EST_TCOMP: t, EST_NBJOBS: 0.0})
             for i, t in enumerate(times)]
    for _ in range(n_requests):
        chosen = policy.choose(cands, ctx)
        ctx.note_dispatch(chosen.sed_name)
    # completion times of the greedy schedule are balanced within one job
    finish = []
    for i, t in enumerate(times):
        n_i = ctx.dispatched.get(f"s{i:02d}", 0)
        finish.append(n_i * t)
    assert max(finish) - min(finish) <= max(times) + 1e-9


# -- namelist round-trip ---------------------------------------------------------------

names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12)
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10 ** 9, max_value=10 ** 9),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False).map(lambda v: float(repr(v))),
    st.text(alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"),
        whitelist_characters=" _-."), max_size=20),
)
values = st.one_of(scalars, st.lists(st.integers(-1000, 1000),
                                     min_size=2, max_size=6))


@given(st.dictionaries(names, st.dictionaries(names, values, max_size=6),
                       min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_namelist_roundtrip(data):
    nml = Namelist()
    for group, params in data.items():
        for key, value in params.items():
            nml.set_param(group, key, value)
    text = format_namelist(nml)
    back = parse_namelist(text)
    for group, params in data.items():
        for key, value in params.items():
            got = back.get_param(group, key)
            if isinstance(value, float):
                assert got == pytest.approx(value)
            else:
                assert got == value
