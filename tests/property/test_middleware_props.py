"""Property-based tests for profiles, schedulers, the transport pipeline
and the namelist parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DefaultPolicy,
    EstimationVector,
    Interceptor,
    MCTPolicy,
    ProfileDesc,
    ProfileError,
    SchedulingContext,
    TransportFabric,
    TransportParams,
)
from repro.core.scheduling import EST_NBJOBS, EST_SPEED, EST_TCOMP
from repro.ramses import format_namelist, parse_namelist
from repro.ramses.namelist import Namelist
from repro.sim import Engine, Host, Link, Network


# -- profile indices --------------------------------------------------------------

@given(st.integers(-3, 8), st.integers(-3, 8), st.integers(-3, 8))
@settings(max_examples=100, deadline=None)
def test_profile_desc_index_contract(last_in, last_inout, last_out):
    """ProfileDesc accepts exactly -1 <= in <= inout <= out."""
    valid = -1 <= last_in <= last_inout <= last_out
    if valid:
        desc = ProfileDesc("svc", last_in, last_inout, last_out)
        assert desc.n_args == last_out + 1
        dirs = [desc.direction(i).value for i in range(desc.n_args)]
        assert dirs == sorted(dirs, key=["IN", "INOUT", "OUT"].index)
    else:
        with pytest.raises(ProfileError):
            ProfileDesc("svc", last_in, last_inout, last_out)


# -- scheduler work conservation ----------------------------------------------------

@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=300))
@settings(max_examples=50, deadline=None)
def test_default_policy_work_conservation(n_seds, n_requests):
    """Every request is placed, and counts differ by at most one."""
    policy = DefaultPolicy()
    ctx = SchedulingContext()
    cands = [EstimationVector(f"s{i:02d}", {EST_SPEED: 1.0})
             for i in range(n_seds)]
    for _ in range(n_requests):
        chosen = policy.choose(cands, ctx)
        assert chosen is not None
        ctx.note_dispatch(chosen.sed_name)
    counts = [ctx.dispatched.get(f"s{i:02d}", 0) for i in range(n_seds)]
    assert sum(counts) == n_requests
    assert max(counts) - min(counts) <= 1


@given(st.lists(st.floats(min_value=1.0, max_value=100.0),
                min_size=2, max_size=12),
       st.integers(min_value=10, max_value=150))
@settings(max_examples=40, deadline=None)
def test_mct_distributes_inversely_to_job_time(times, n_requests):
    """MCT gives each SeD a share ~ proportional to its speed."""
    policy = MCTPolicy()
    ctx = SchedulingContext()
    cands = [EstimationVector(f"s{i:02d}", {EST_TCOMP: t, EST_NBJOBS: 0.0})
             for i, t in enumerate(times)]
    for _ in range(n_requests):
        chosen = policy.choose(cands, ctx)
        ctx.note_dispatch(chosen.sed_name)
    # completion times of the greedy schedule are balanced within one job
    finish = []
    for i, t in enumerate(times):
        n_i = ctx.dispatched.get(f"s{i:02d}", 0)
        finish.append(n_i * t)
    assert max(finish) - min(finish) <= max(times) + 1e-9


# -- transport pipeline invariants --------------------------------------------------


def _fabric():
    engine = Engine()
    net = Network(engine)
    for name in ("alpha", "beta"):
        net.add_host(Host(engine, name))
    net.connect("alpha", "beta", Link(engine, "wire", 0.010, 1e6))
    fabric = TransportFabric(engine, net,
                             TransportParams(marshal_fixed=1e-3,
                                             marshal_per_byte=0.0,
                                             dispatch_fixed=1e-3))
    return engine, fabric


REPLY_NBYTES = 16


@given(st.lists(st.tuples(st.sampled_from(["ping", "pong", "poke"]),
                          st.integers(min_value=1, max_value=10 ** 6),
                          st.booleans()),
                max_size=25))
@settings(max_examples=25, deadline=None)
def test_accounting_counts_every_wire_crossing(calls):
    """messages_sent/bytes_sent/messages_by_op are exact for any mix of
    one-way sends and round-trip RPCs."""
    engine, fabric = _fabric()
    server = fabric.endpoint("server", "beta")

    def ack(msg):
        yield engine.timeout(0.0)
        return ("ok", REPLY_NBYTES)

    for op in ("ping", "pong", "poke"):
        server.on(op, ack)
    server.start()
    client = fabric.endpoint("client", "alpha")

    def session():
        for op, nbytes, roundtrip in calls:
            if roundtrip:
                yield from client.rpc("server", op, nbytes=nbytes)
            else:
                yield from client.send("server", op, None, nbytes=nbytes)

    engine.run_process(session())
    engine.run()
    n_rpc = sum(1 for _, _, rt in calls if rt)
    assert fabric.messages_sent == len(calls) + n_rpc
    assert fabric.bytes_sent == (sum(nb for _, nb, _ in calls)
                                 + n_rpc * REPLY_NBYTES)
    by_op = {}
    for op, _, rt in calls:
        by_op[op] = by_op.get(op, 0) + (2 if rt else 1)
    assert fabric.accounting.messages_by_op == by_op
    assert fabric.accounting.dead_letters == 0
    assert fabric.accounting.messages_dropped == 0


@given(st.integers(min_value=0, max_value=4),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=20, deadline=None)
def test_interceptor_chains_nest_like_a_stack(n_endpoint, n_fabric):
    """For any chain lengths, outbound phases run endpoint interceptors
    (in install order) then fabric ones; inbound phases the reverse."""
    engine, fabric = _fabric()
    journal = []

    class Probe(Interceptor):
        def __init__(self, tag):
            self.tag = tag

        def _note(self, ctx):
            journal.append((self.tag, ctx.phase))
            return
            yield  # pragma: no cover

        intercept_send = _note
        intercept_deliver = _note

    ep_tags = [f"e{i}" for i in range(n_endpoint)]
    fab_tags = [f"f{i}" for i in range(n_fabric)]
    for tag in fab_tags:
        fabric.pipeline.add(Probe(tag))
    server = fabric.endpoint("server", "beta")

    def ack(msg):
        yield engine.timeout(0.0)
        return ("ok", 8)

    server.on("op", ack)
    server.start()
    client = fabric.endpoint("client", "alpha",
                             interceptors=[Probe(t) for t in ep_tags])
    # give the server the same endpoint chain so deliver ordering is probed
    for tag in ep_tags:
        server.pipeline.add(Probe(tag))

    def call():
        yield from client.rpc("server", "op")

    engine.run_process(call())
    sends = [tag for tag, phase in journal if phase == "send"]
    delivers = [tag for tag, phase in journal if phase == "deliver"]
    assert sends == ep_tags + fab_tags          # outbound: endpoint first
    assert delivers == fab_tags + ep_tags       # inbound: fabric first


# -- namelist round-trip ---------------------------------------------------------------

names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12)
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10 ** 9, max_value=10 ** 9),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False).map(lambda v: float(repr(v))),
    st.text(alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"),
        whitelist_characters=" _-."), max_size=20),
)
values = st.one_of(scalars, st.lists(st.integers(-1000, 1000),
                                     min_size=2, max_size=6))


@given(st.dictionaries(names, st.dictionaries(names, values, max_size=6),
                       min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_namelist_roundtrip(data):
    nml = Namelist()
    for group, params in data.items():
        for key, value in params.items():
            nml.set_param(group, key, value)
    text = format_namelist(nml)
    back = parse_namelist(text)
    for group, params in data.items():
        for key, value in params.items():
            got = back.get_param(group, key)
            if isinstance(value, float):
                assert got == pytest.approx(value)
            else:
                assert got == value
