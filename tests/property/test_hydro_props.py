"""Property-based tests for the finite-volume Euler solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ramses.hydro import HydroSolver, HydroState


@st.composite
def random_states(draw):
    seed = draw(st.integers(0, 2 ** 31))
    n = draw(st.sampled_from([6, 8, 10]))
    gamma = draw(st.sampled_from([1.4, 5.0 / 3.0]))
    rng = np.random.default_rng(seed)
    rho = 0.5 + rng.random((n, n, n))
    vel = 0.3 * rng.standard_normal((n, n, n, 3))
    p = 0.2 + rng.random((n, n, n))
    return HydroState.from_primitive(rho, vel, p, gamma)


@given(random_states(), st.floats(min_value=0.01, max_value=0.2))
@settings(max_examples=25, deadline=None)
def test_exact_conservation_for_any_state(state, t_end):
    m0, p0, e0 = state.totals()
    HydroSolver().run(state, t_end)
    m1, p1, e1 = state.totals()
    scale = abs(e0) + 1.0
    assert m1 == pytest.approx(m0, abs=1e-9 * scale)
    assert e1 == pytest.approx(e0, abs=1e-8 * scale)
    assert np.allclose(p1, p0, atol=1e-9 * scale)


@given(random_states())
@settings(max_examples=25, deadline=None)
def test_positivity_for_any_state(state):
    HydroSolver().run(state, 0.15)
    assert np.all(state.rho > 0)
    assert np.all(state.pressure() > 0)
    assert np.all(np.isfinite(state.energy))


@given(random_states())
@settings(max_examples=15, deadline=None)
def test_cfl_dt_positive_and_stable(state):
    solver = HydroSolver(cfl=0.4)
    dx = 1.0 / state.rho.shape[0]
    dt = solver.max_dt(state, dx)
    assert 0 < dt < 1.0
    before = state.rho.copy()
    solver.step(state, dt, dx)
    # a single CFL step never blows the density up catastrophically
    assert state.rho.max() < 10 * before.max()


@given(st.integers(0, 2 ** 31), st.sampled_from([1.4, 5.0 / 3.0]))
@settings(max_examples=15, deadline=None)
def test_symmetry_mirror(seed, gamma):
    """Mirror-symmetric initial data stays mirror-symmetric."""
    n = 8
    rng = np.random.default_rng(seed)
    half = 0.5 + rng.random((n // 2, n, n))
    rho = np.concatenate([half, half[::-1]], axis=0)
    p = np.ones((n, n, n))
    state = HydroState.from_primitive(rho, np.zeros((n, n, n, 3)), p, gamma)
    HydroSolver().run(state, 0.05)
    assert np.allclose(state.rho, state.rho[::-1], atol=1e-10)
    # x-momentum is antisymmetric under the mirror
    assert np.allclose(state.mom[..., 0], -state.mom[::-1, ..., 0],
                       atol=1e-10)
