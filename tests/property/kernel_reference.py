"""Reference event streams for the kernel determinism suite.

The PR-3 kernel optimizations promise *bit-identical event orderings*:
every fast path (Timeout dispatch, pre-bound interceptor chains, route
precompute, buffered trace stamps) must replay exactly the total order of
events the unoptimized kernel executed.  The proof is a recorded trace:
``python -m tests.property.kernel_reference`` runs the seeded 100-zoom
campaign and the E11 degraded campaign with :attr:`Engine.event_log`
enabled and writes a digest of each stream (event count, final simulated
time, SHA-256 over every ``(time, priority, seq, kind, name)`` record,
plus head/tail samples for debugging) to ``tests/data/``.

``test_kernel_determinism.py`` re-runs the same workloads against the
current kernel and diffs the digests.  Regenerate the references ONLY
from a commit whose kernel behaviour is known-good — they are the
contract an optimization has to honour, not a snapshot of whatever the
tree currently does.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Tuple

DATA_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "data")

#: The two recorded workloads: (slug, campaign-config kwargs).
WORKLOADS = {
    "campaign": {"n_sub_simulations": 100, "seed": 2007},
    "degraded": {"n_sub_simulations": 100, "seed": 2007, "n_crashes": 2},
}


def capture_stream(n_sub_simulations: int, seed: int, n_crashes: int = 0,
                   observe: bool = True,
                   data_policy: str = None) -> Tuple[List[tuple], float]:
    """Run one campaign with event logging on; return (stream, final_time).

    Uses :attr:`Engine.default_event_log` because the workflow builds its
    own engine; the class attribute is restored on exit.  ``observe``
    toggles the span/metrics recording — the references are recorded with
    it on, and the suite asserts the stream is identical with it off
    (span recording is pure bookkeeping, never events).  ``data_policy``
    wires the data-manager grid: with ``"volatile"`` the catalog and the
    managers exist but every argument still travels by value, and the
    suite asserts that too replays the recorded stream (the data layer is
    pure bookkeeping until a profile opts into persistence).
    """
    from repro.services import CampaignConfig, FailurePlan, run_campaign
    from repro.sim.engine import Engine

    failures = FailurePlan(n_crashes=n_crashes) if n_crashes else None
    log: List[tuple] = []
    Engine.default_event_log = log
    try:
        run_campaign(CampaignConfig(n_sub_simulations=n_sub_simulations,
                                    seed=seed, failures=failures,
                                    observe=observe, data_policy=data_policy))
    finally:
        Engine.default_event_log = None
    final_time = log[-1][0] if log else 0.0
    return log, final_time


def record_line(rec: tuple) -> str:
    when, prio, seq, kind, name = rec
    return f"{when!r}|{prio}|{seq}|{kind}|{name or ''}"


def digest(stream: List[tuple], final_time: float) -> dict:
    sha = hashlib.sha256()
    for rec in stream:
        sha.update(record_line(rec).encode())
        sha.update(b"\n")
    return {
        "n_events": len(stream),
        "final_time": repr(final_time),
        "sha256": sha.hexdigest(),
        "head": [record_line(r) for r in stream[:5]],
        "tail": [record_line(r) for r in stream[-5:]],
    }


def reference_path(slug: str) -> str:
    return os.path.join(DATA_DIR, f"ref_events_{slug}.json")


def main() -> None:
    os.makedirs(DATA_DIR, exist_ok=True)
    for slug, kwargs in WORKLOADS.items():
        stream, final_time = capture_stream(**kwargs)
        ref = digest(stream, final_time)
        with open(reference_path(slug), "w") as fh:
            json.dump(ref, fh, indent=1)
        print(f"{slug}: {ref['n_events']} events, "
              f"t_end={ref['final_time']}, sha256={ref['sha256'][:16]}...")


if __name__ == "__main__":
    main()
