"""Property-based tests for the FoF finder and merger trees."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galics import (
    Halo,
    HaloCatalog,
    build_merger_tree,
    find_halos,
    friends_of_friends,
    match_halos,
)
from repro.ramses import ParticleSet


@st.composite
def point_sets(draw):
    seed = draw(st.integers(0, 2 ** 31))
    n = draw(st.integers(2, 300))
    rng = np.random.default_rng(seed)
    return rng.random((n, 3))


@given(point_sets(), st.floats(min_value=0.005, max_value=0.2))
@settings(max_examples=50, deadline=None)
def test_fof_labels_partition(x, b):
    labels = friends_of_friends(x, b)
    assert labels.shape == (len(x),)
    # labels form a partition: every particle exactly one group
    assert labels.min() >= 0


@given(point_sets())
@settings(max_examples=30, deadline=None)
def test_fof_monotone_in_linking_length(x):
    """Larger linking length never increases the number of groups."""
    n_small = len(np.unique(friends_of_friends(x, 0.02)))
    n_large = len(np.unique(friends_of_friends(x, 0.08)))
    assert n_large <= n_small


@given(point_sets(), st.floats(min_value=0.01, max_value=0.1))
@settings(max_examples=30, deadline=None)
def test_fof_symmetric_under_translation(x, b):
    """Periodic FoF is translation-invariant: group sizes unchanged."""
    labels0 = friends_of_friends(x, b)
    shifted = np.mod(x + np.array([0.37, 0.81, 0.13]), 1.0)
    labels1 = friends_of_friends(shifted, b)
    sizes0 = sorted(np.bincount(labels0))
    sizes1 = sorted(np.bincount(labels1))
    assert sizes0 == sizes1


@given(point_sets())
@settings(max_examples=30, deadline=None)
def test_halo_members_disjoint_and_mass_bounded(x):
    n = len(x)
    parts = ParticleSet(x, np.zeros_like(x), np.full(n, 1.0 / n),
                        np.arange(n, dtype=np.int64),
                        np.zeros(n, dtype=np.int16))
    catalog = find_halos(parts, aexp=1.0, min_particles=2)
    seen = set()
    total = 0.0
    for halo in catalog:
        ids = set(halo.member_ids.tolist())
        assert not (ids & seen)      # membership is disjoint
        seen |= ids
        total += halo.mass
    assert total <= 1.0 + 1e-9       # halos contain at most all the mass


@st.composite
def halo_histories(draw):
    """Random but structurally valid 3-snapshot halo histories."""
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    n_particles = 200
    catalogs = []
    for snap, aexp in enumerate((0.3, 0.6, 1.0)):
        n_halos = int(rng.integers(1, 5))
        # random disjoint member sets
        perm = rng.permutation(n_particles)
        cuts = np.sort(rng.choice(np.arange(10, n_particles - 10),
                                  size=n_halos - 1, replace=False)) \
            if n_halos > 1 else np.array([], dtype=int)
        groups = np.split(perm, cuts)
        halos = []
        for hid, members in enumerate(groups):
            if len(members) == 0:
                continue
            halos.append(Halo(
                halo_id=hid, center=rng.random(3),
                mass=len(members) / n_particles,
                velocity=np.zeros(3), n_particles=len(members),
                radius=0.05, member_ids=np.sort(members.astype(np.int64))))
        catalogs.append(HaloCatalog(aexp, halos))
    return catalogs


@given(halo_histories())
@settings(max_examples=40, deadline=None)
def test_merger_tree_structure_invariants(catalogs):
    tree = build_merger_tree(catalogs, min_shared_fraction=0.0)
    graph = tree.graph
    assert nx.is_directed_acyclic_graph(graph)
    for node in graph.nodes:
        # time flows forward along edges, one descendant max
        assert graph.out_degree(node) <= 1
        for succ in graph.successors(node):
            assert succ.snapshot == node.snapshot + 1


@given(halo_histories())
@settings(max_examples=40, deadline=None)
def test_match_fractions_bounded(catalogs):
    for earlier, later in zip(catalogs[:-1], catalogs[1:]):
        for src, dst, frac in match_halos(earlier, later):
            assert 0.0 < frac <= 1.0 + 1e-12


@given(halo_histories())
@settings(max_examples=30, deadline=None)
def test_main_branch_terminates(catalogs):
    tree = build_merger_tree(catalogs)
    for root in tree.roots():
        branch = tree.main_branch(root)
        assert 1 <= len(branch) <= len(catalogs)
        snaps = [n.snapshot for n in branch]
        assert snaps == sorted(snaps, reverse=True)
