"""Property-based tests for initial-condition generation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grafic import make_multi_level_ic, make_single_level_ic
from repro.ramses import EDS, LCDM_WMAP


@given(st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
                 st.floats(0.0, 1.0)),
       st.floats(min_value=0.05, max_value=0.45),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_multi_level_mass_exactly_one(center, half, n_levels, seed):
    """Total mass == 1 for any zoom geometry (parent-cell alignment)."""
    ic = make_multi_level_ic(8, 50.0, EDS, center, n_levels=n_levels,
                             region_half_size=half, a_start=0.05, seed=seed)
    assert ic.particles.total_mass == pytest.approx(1.0, abs=1e-12)
    ic.particles.validate()


@given(st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
                 st.floats(0.0, 1.0)),
       st.floats(min_value=0.05, max_value=0.4),
       st.integers(min_value=1, max_value=2),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_multi_level_mass_hierarchy(center, half, n_levels, seed):
    """Each level's particle mass is 8x lighter than its parent's, and the
    finest species is present whenever the region is non-degenerate."""
    ic = make_multi_level_ic(8, 50.0, EDS, center, n_levels=n_levels,
                             region_half_size=half, a_start=0.05, seed=seed)
    parts = ic.particles
    levels = np.unique(parts.level)
    for lo, hi in zip(levels[:-1], levels[1:]):
        m_lo = parts.mass[parts.level == lo].max()
        m_hi = parts.mass[parts.level == hi].max()
        assert m_lo / m_hi == pytest.approx(8.0 ** (hi - lo), rel=1e-9)


@given(st.integers(min_value=0, max_value=200),
       st.floats(min_value=0.02, max_value=0.3))
@settings(max_examples=20, deadline=None)
def test_single_level_momentum_centre_of_mass(seed, a_start):
    """Zel'dovich ICs carry (numerically) zero net momentum: psi is a
    gradient field with no k=0 mode."""
    ic = make_single_level_ic(8, 100.0, LCDM_WMAP, a_start=a_start, seed=seed)
    net = np.abs((ic.particles.p * ic.particles.mass[:, None]).sum(axis=0))
    typical = np.abs(ic.particles.p).mean() + 1e-30
    assert np.all(net < 1e-8 * typical * len(ic.particles) + 1e-20)


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_single_level_deterministic(seed):
    a = make_single_level_ic(8, 100.0, EDS, a_start=0.1, seed=seed)
    b = make_single_level_ic(8, 100.0, EDS, a_start=0.1, seed=seed)
    assert np.array_equal(a.particles.x, b.particles.x)
    assert np.array_equal(a.particles.p, b.particles.p)
