"""Unit tests for the linear power spectrum."""

import numpy as np
import pytest

from repro.grafic import PowerSpectrum, transfer_bbks, transfer_eisenstein_hu
from repro.ramses import LCDM_WMAP, Cosmology


class TestTransferFunctions:
    @pytest.mark.parametrize("transfer", [transfer_bbks, transfer_eisenstein_hu])
    def test_normalized_at_large_scales(self, transfer):
        assert float(transfer(np.array([1e-6]), LCDM_WMAP)[0]) == pytest.approx(
            1.0, abs=1e-2)

    @pytest.mark.parametrize("transfer", [transfer_bbks, transfer_eisenstein_hu])
    def test_monotone_decreasing(self, transfer):
        k = np.logspace(-3, 2, 100)
        t = transfer(k, LCDM_WMAP)
        assert np.all(np.diff(t) <= 1e-12)

    @pytest.mark.parametrize("transfer", [transfer_bbks, transfer_eisenstein_hu])
    def test_small_scale_suppression(self, transfer):
        assert float(transfer(np.array([10.0]), LCDM_WMAP)[0]) < 1e-2

    def test_baryons_suppress_power(self):
        with_b = LCDM_WMAP
        no_b = Cosmology(omega_m=0.27, omega_l=0.73, h=0.71, sigma8=0.84,
                         n_s=0.99, omega_b=1e-4)
        k = np.array([1.0])
        assert float(transfer_eisenstein_hu(k, with_b)[0]) < float(
            transfer_eisenstein_hu(k, no_b)[0])


class TestPowerSpectrum:
    @pytest.fixture(scope="class")
    def ps(self):
        return PowerSpectrum(LCDM_WMAP)

    def test_sigma8_normalization(self, ps):
        assert ps.sigma8_check() == pytest.approx(LCDM_WMAP.sigma8, rel=1e-3)

    def test_zero_mode_zero_power(self, ps):
        assert float(ps(np.array([0.0]))[0]) == 0.0

    def test_turnover_exists(self, ps):
        """P(k) rises as ~k^n at large scales, falls at small scales."""
        k = np.logspace(-4, 2, 200)
        p = ps(k)
        peak = np.argmax(p)
        assert 0 < peak < len(k) - 1
        k_peak = k[peak]
        assert 5e-3 < k_peak < 0.2   # matter-radiation equality scale

    def test_large_scale_slope_is_ns(self, ps):
        k1, k2 = 1e-4, 2e-4
        slope = np.log(ps(k2) / ps(k1)) / np.log(k2 / k1)
        assert float(slope) == pytest.approx(LCDM_WMAP.n_s, abs=0.02)

    def test_sigma_decreases_with_radius(self, ps):
        assert ps.sigma_r(4.0) > ps.sigma_r(8.0) > ps.sigma_r(16.0)

    def test_sigma_invalid_radius(self, ps):
        with pytest.raises(ValueError):
            ps.sigma_r(0.0)

    def test_unknown_transfer_rejected(self):
        with pytest.raises(ValueError, match="bbks"):
            PowerSpectrum(LCDM_WMAP, transfer="cmbfast")

    def test_bbks_and_eh_agree_roughly(self):
        ps_b = PowerSpectrum(LCDM_WMAP, transfer="bbks")
        ps_e = PowerSpectrum(LCDM_WMAP, transfer="eisenstein_hu")
        k = np.logspace(-2, 0, 20)
        ratio = ps_b(k) / ps_e(k)
        assert np.all((ratio > 0.5) & (ratio < 2.0))
