"""Unit tests for single- and multi-level initial conditions."""

import numpy as np
import pytest

from repro.grafic import (
    ZoomRegion,
    growing_mode_momentum_factor,
    make_multi_level_ic,
    make_single_level_ic,
)
from repro.ramses import EDS, LCDM_WMAP


class TestZoomRegion:
    def test_contains_basic(self):
        region = ZoomRegion((0.5, 0.5, 0.5), 0.1)
        assert region.contains(np.array([[0.55, 0.45, 0.5]]))[0]
        assert not region.contains(np.array([[0.75, 0.5, 0.5]]))[0]

    def test_contains_periodic(self):
        region = ZoomRegion((0.02, 0.5, 0.5), 0.1)
        assert region.contains(np.array([[0.97, 0.5, 0.5]]))[0]

    def test_shrunk(self):
        region = ZoomRegion((0.5, 0.5, 0.5), 0.2)
        assert region.shrunk(0.5).half_size == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZoomRegion((0.5, 0.5, 0.5), 0.0)


class TestSingleLevel:
    @pytest.fixture(scope="class")
    def ic(self):
        return make_single_level_ic(16, 100.0, LCDM_WMAP, a_start=0.05, seed=1)

    def test_particle_count_and_mass(self, ic):
        assert len(ic.particles) == 16 ** 3
        assert ic.particles.total_mass == pytest.approx(1.0)
        assert np.allclose(ic.particles.mass, 1.0 / 16 ** 3)

    def test_levels(self, ic):
        assert ic.levelmin == ic.levelmax == 4
        assert not ic.is_zoom
        assert ic.n_levels == 1

    def test_positions_wrapped_and_valid(self, ic):
        ic.particles.validate()

    def test_displacements_small_at_early_times(self, ic):
        q = np.mod(ic.particles.x, 1.0)
        # early ICs: particles near their lattice sites
        lattice = np.mod((np.round(q * 16 - 0.5) + 0.5) / 16, 1.0)
        d = np.abs(q - lattice)
        d = np.minimum(d, 1 - d)
        assert d.max() < 1.0 / 16

    def test_momentum_growing_mode_relation(self, ic):
        """p and displacement are parallel with the growing-mode factor."""
        from repro.ramses import ParticleSet
        lattice = ParticleSet.uniform_lattice(16).x
        d = ic.particles.x - lattice
        d -= np.round(d)
        factor = growing_mode_momentum_factor(
            LCDM_WMAP, 0.05) / float(LCDM_WMAP.growth_factor(0.05))
        assert np.allclose(ic.particles.p, factor * d, rtol=1e-9, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_single_level_ic(15, 100.0, EDS)
        with pytest.raises(ValueError):
            make_single_level_ic(16, 100.0, EDS, a_start=1.5)


class TestMultiLevel:
    @pytest.fixture(scope="class")
    def zoom_ic(self):
        return make_multi_level_ic(
            n_coarse=8, boxsize_mpc_h=100.0, cosmology=LCDM_WMAP,
            center=(0.5, 0.5, 0.5), n_levels=2, region_half_size=0.25,
            a_start=0.05, seed=1)

    def test_total_mass_unity(self, zoom_ic):
        assert zoom_ic.particles.total_mass == pytest.approx(1.0, rel=1e-9)

    def test_three_species(self, zoom_ic):
        levels = np.unique(zoom_ic.particles.level)
        assert list(levels) == [0, 1, 2]

    def test_mass_hierarchy_factor_8(self, zoom_ic):
        parts = zoom_ic.particles
        masses = [parts.mass[parts.level == lv][0] for lv in (0, 1, 2)]
        assert masses[0] / masses[1] == pytest.approx(8.0)
        assert masses[1] / masses[2] == pytest.approx(8.0)

    def test_russian_doll_nesting(self, zoom_ic):
        """Finest particles sit in the innermost region; coarse particles
        keep out of it (checked in Lagrangian coordinates via masses)."""
        parts = zoom_ic.particles
        inner = zoom_ic.regions[-1]
        outer = zoom_ic.regions[0]
        finest = parts.select(parts.level == 2)
        # finest Lagrangian sites are all inside the inner region; at the
        # early start time the displacement is well under a cell
        assert inner.contains(finest.x).sum() == len(finest)
        coarse = parts.select(parts.level == 0)
        assert (~outer.contains(coarse.x)).mean() > 0.9

    def test_levels_metadata(self, zoom_ic):
        assert zoom_ic.levelmin == 3
        assert zoom_ic.levelmax == 5
        assert zoom_ic.is_zoom
        assert len(zoom_ic.regions) == 2
        assert zoom_ic.regions[1].half_size < zoom_ic.regions[0].half_size

    def test_unique_ids(self, zoom_ic):
        zoom_ic.particles.validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_multi_level_ic(8, 100.0, EDS, (0.5, 0.5, 0.5), 0, 0.2)
        with pytest.raises(ValueError):
            make_multi_level_ic(8, 100.0, EDS, (0.5, 0.5), 1, 0.2)

    def test_center_wrapping(self):
        ic = make_multi_level_ic(8, 100.0, EDS, (1.2, -0.3, 0.5), 1, 0.1,
                                 seed=2)
        assert all(0 <= c < 1 for c in ic.regions[0].center)
