"""Unit + physics tests for the 2LPT initial conditions."""

import numpy as np
import pytest

from repro.grafic import (
    GaussianFieldGenerator,
    PowerSpectrum,
    make_single_level_ic,
)
from repro.grafic.lpt import (
    d2_growth,
    d2_growth_rate,
    make_single_level_ic_2lpt,
    second_order_displacement,
)
from repro.ramses import EDS, LCDM_WMAP, GravitySolver, Leapfrog
from repro.ramses.mesh import cic_deposit


def wrapdiff(a, b):
    d = a - b
    return d - np.round(d)


class TestD2Growth:
    def test_eds_analytic(self):
        """EdS: D2 = -3/7 D1^2 exactly (Omega_m(a) == 1)."""
        for a in (0.1, 0.5, 1.0):
            assert d2_growth(EDS, a) == pytest.approx(-3.0 / 7.0 * a * a)

    def test_negative_and_quadratic(self):
        assert d2_growth(LCDM_WMAP, 0.5) < 0
        ratio = d2_growth(LCDM_WMAP, 0.2) / d2_growth(LCDM_WMAP, 0.1)
        d1_ratio = (LCDM_WMAP.growth_factor(0.2)
                    / LCDM_WMAP.growth_factor(0.1)) ** 2
        assert ratio == pytest.approx(d1_ratio, rel=0.02)

    def test_rate_matches_difference(self):
        a = 0.3
        rate = d2_growth_rate(LCDM_WMAP, a)
        fd = (d2_growth(LCDM_WMAP, a + 1e-4)
              - d2_growth(LCDM_WMAP, a - 1e-4)) / 2e-4
        assert rate == pytest.approx(fd, rel=1e-3)


class TestSecondOrderField:
    def test_plane_wave_has_zero_psi2(self):
        """Zel'dovich is exact in 1-d: the 2LPT source vanishes."""
        ps = PowerSpectrum(LCDM_WMAP)
        gen = GaussianFieldGenerator(ps, 100.0, 16, seed=1)
        # overwrite the noise with a single kx mode
        n = 16
        white = np.zeros((n, n, n), dtype=complex)
        white[1, 0, 0] = 50.0
        white[-1, 0, 0] = 50.0
        gen._white_hat_fine = white
        psi2 = second_order_displacement(gen, n)
        assert np.abs(psi2).max() < 1e-12

    def test_quadratic_scaling_with_amplitude(self):
        ps = PowerSpectrum(LCDM_WMAP)
        gen = GaussianFieldGenerator(ps, 100.0, 16, seed=2)
        psi2_a = second_order_displacement(gen, 16)
        gen._white_hat_fine = gen._white_hat_fine * 2.0
        psi2_b = second_order_displacement(gen, 16)
        assert np.allclose(psi2_b, 4.0 * psi2_a, rtol=1e-10)

    def test_psi2_much_smaller_than_psi1(self):
        ps = PowerSpectrum(LCDM_WMAP)
        gen = GaussianFieldGenerator(ps, 100.0, 32, seed=3)
        psi1 = gen.displacement(32)
        psi2 = second_order_displacement(gen, 32)
        # at z=0 normalization, |D2 psi2| << |D1 psi1| for this box
        assert (3.0 / 7.0) * psi2.std() < 0.5 * psi1.std()


class TestIc2lpt:
    def test_basic_structure(self):
        ic = make_single_level_ic_2lpt(16, 100.0, LCDM_WMAP, a_start=0.1,
                                       seed=4)
        assert len(ic.particles) == 16 ** 3
        ic.particles.validate()

    def test_beats_zeldovich_against_evolved_reference(self):
        """2LPT ICs at a late start match the PM evolution of early-start
        Zel'dovich ICs better than late Zel'dovich ICs do."""
        n, box, seed, a_t = 16, 100.0, 5, 0.25
        early = make_single_level_ic(n, box, LCDM_WMAP, a_start=0.02,
                                     seed=seed)
        parts = early.particles.copy()
        leap = Leapfrog(LCDM_WMAP, GravitySolver(LCDM_WMAP, n))
        leap.run(parts, LCDM_WMAP.aexp_schedule(0.02, a_t, 48))
        ref = parts.x[np.argsort(parts.ids)]

        def mean_err(ic):
            x = ic.particles.x[np.argsort(ic.particles.ids)]
            return np.sqrt((wrapdiff(x, ref) ** 2).sum(axis=1)).mean()

        err_za = mean_err(make_single_level_ic(n, box, LCDM_WMAP,
                                               a_start=a_t, seed=seed))
        err_2lpt = mean_err(make_single_level_ic_2lpt(n, box, LCDM_WMAP,
                                                      a_start=a_t, seed=seed))
        assert err_2lpt < err_za

    def test_higher_density_skewness_than_zeldovich(self):
        """2LPT restores the second-order mode coupling: the density field
        is more skewed than Zel'dovich's at equal variance."""
        n, box, seed, a_t = 32, 100.0, 6, 0.35

        def skewness(ic):
            grid = cic_deposit(ic.particles.x, ic.particles.mass, n)
            delta = grid / grid.mean() - 1.0
            return float(np.mean(delta ** 3) / np.mean(delta ** 2) ** 1.5)

        s_za = skewness(make_single_level_ic(n, box, LCDM_WMAP,
                                             a_start=a_t, seed=seed))
        s_2lpt = skewness(make_single_level_ic_2lpt(n, box, LCDM_WMAP,
                                                    a_start=a_t, seed=seed))
        assert s_2lpt > s_za

    def test_validation(self):
        with pytest.raises(ValueError):
            make_single_level_ic_2lpt(10, 100.0, EDS)
        with pytest.raises(ValueError):
            make_single_level_ic_2lpt(16, 100.0, EDS, a_start=1.2)
