"""Unit tests for the mode-matched Gaussian random field generator."""

import numpy as np
import pytest

from repro.grafic import (
    GaussianFieldGenerator,
    PowerSpectrum,
    measure_power_spectrum,
)
from repro.ramses import LCDM_WMAP


@pytest.fixture(scope="module")
def spectrum():
    return PowerSpectrum(LCDM_WMAP)


@pytest.fixture(scope="module")
def generator(spectrum):
    return GaussianFieldGenerator(spectrum, boxsize_mpc_h=100.0,
                                  n_fine=64, seed=12)


class TestFieldStatistics:
    def test_zero_mean(self, generator):
        delta = generator.delta(64)
        assert abs(delta.mean()) < 1e-12

    def test_field_is_real_and_finite(self, generator):
        delta = generator.delta(32)
        assert np.all(np.isfinite(delta))

    def test_measured_spectrum_matches_input(self, generator, spectrum):
        delta = generator.delta(64)
        k, p = measure_power_spectrum(delta, 100.0, n_bins=14)
        # skip first (few modes) and last (Nyquist) bins
        ratio = p[1:-2] / spectrum(k[1:-2])
        assert np.all((ratio > 0.7) & (ratio < 1.4))

    def test_deterministic_per_seed(self, spectrum):
        a = GaussianFieldGenerator(spectrum, 100.0, 32, seed=5).delta(32)
        b = GaussianFieldGenerator(spectrum, 100.0, 32, seed=5).delta(32)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, spectrum):
        a = GaussianFieldGenerator(spectrum, 100.0, 32, seed=5).delta(32)
        b = GaussianFieldGenerator(spectrum, 100.0, 32, seed=6).delta(32)
        assert not np.allclose(a, b)


class TestModeMatching:
    def test_coarse_field_shares_large_scale_modes(self, generator):
        """delta(32) and delta(64) agree on low-k Fourier modes: the
        'Russian doll' consistency property of §3."""
        fine = np.fft.fftn(generator.delta(64))
        coarse = np.fft.fftn(generator.delta(32))
        # DFT amplitudes of the same physical mode scale as n^3 (amplitude
        # normalization sqrt(P n^3 / V) times the noise rescale (n_c/n_f)^1.5
        # combine to exactly (n_c/n_f)^3)
        scale = (32 / 64) ** 3
        for idx in [(1, 0, 0), (0, 2, 1), (3, 3, 2), (-2, 1, 0)]:
            assert coarse[idx] == pytest.approx(fine[idx] * scale, rel=1e-10)

    def test_truncated_coarse_is_exactly_real(self, generator):
        # Nyquist handling must keep the coarse field real
        d_hat = np.fft.fftn(generator.delta(32))
        back = np.fft.ifftn(d_hat)
        assert np.abs(back.imag).max() < 1e-12

    def test_requesting_finer_than_realization_fails(self, generator):
        with pytest.raises(ValueError):
            generator.delta(128)
        with pytest.raises(ValueError):
            generator.delta(33)   # odd


class TestDisplacement:
    def test_divergence_is_minus_delta(self, generator):
        """psi solves div(psi) = -delta (checked spectrally, sub-Nyquist)."""
        n = 32
        psi = generator.displacement(n) * 100.0   # back to Mpc/h
        delta = generator.delta(n)
        k1 = 2.0 * np.pi * np.fft.fftfreq(n, d=100.0 / n)
        div_hat = (1j * k1[:, None, None] * np.fft.fftn(psi[..., 0])
                   + 1j * k1[None, :, None] * np.fft.fftn(psi[..., 1])
                   + 1j * k1[None, None, :] * np.fft.fftn(psi[..., 2]))
        delta_hat = np.fft.fftn(delta)
        # compare on non-Nyquist modes
        mask = np.ones((n, n, n), dtype=bool)
        mask[n // 2, :, :] = mask[:, n // 2, :] = mask[:, :, n // 2] = False
        mask[0, 0, 0] = False
        assert np.allclose(div_hat[mask], -delta_hat[mask], atol=1e-8)

    def test_displacement_shape_and_units(self, generator):
        psi = generator.displacement(16)
        assert psi.shape == (16, 16, 16, 3)
        # typical displacement for LCDM at z=0 in a 100 Mpc/h box:
        # a few Mpc/h -> a few 0.01 box units
        rms = psi.std()
        assert 0.005 < rms < 0.2


class TestValidation:
    def test_constructor_validation(self, spectrum):
        with pytest.raises(ValueError):
            GaussianFieldGenerator(spectrum, -1.0, 32)
        with pytest.raises(ValueError):
            GaussianFieldGenerator(spectrum, 100.0, 31)
