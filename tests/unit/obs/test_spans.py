"""Span store lifecycle: LIFO closes, unwinds, queries."""

import pickle

from repro.obs import SpanStore


def test_begin_end_basic():
    store = SpanStore()
    span = store.begin("req:1", "request", 1.0, category="request", request_id=1)
    assert span.open
    assert span.duration is None
    store.end(span, 3.5, sed="n1")
    assert span.ok
    assert span.duration == 2.5
    assert span.attrs["sed"] == "n1"
    assert store.open_count == 0


def test_self_time_subtracts_direct_children():
    store = SpanStore()
    outer = store.begin("t", "outer", 0.0)
    inner = store.begin("t", "inner", 1.0)
    assert inner.parent_id == outer.span_id
    store.end(inner, 3.0)
    store.end(outer, 10.0)
    assert inner.self_time == 2.0
    assert outer.child_time == 2.0
    assert outer.self_time == 8.0


def test_lifo_violation_force_closes_children_as_interrupted():
    store = SpanStore()
    outer = store.begin("t", "outer", 0.0)
    inner = store.begin("t", "inner", 1.0)
    store.end(outer, 5.0)
    assert inner.status == "interrupted"
    assert inner.end == 5.0
    assert outer.ok
    assert store.open_count == 0


def test_end_is_idempotent():
    store = SpanStore()
    span = store.begin("t", "phase", 0.0)
    store.end(span, 1.0)
    store.end(span, 9.0, status="error")
    assert span.ok
    assert span.end == 1.0


def test_unwind_closes_whole_track_only():
    store = SpanStore()
    a = store.begin("req:7", "request", 0.0)
    b = store.begin("req:7", "solve", 1.0)
    other = store.begin("sed:n1", "busy", 0.0)
    n = store.unwind("req:7", 2.0, "error")
    assert n == 2
    assert a.status == "error"
    assert b.status == "error"
    assert other.open


def test_close_all_marks_leftovers_lost():
    store = SpanStore()
    store.begin("a", "x", 0.0)
    store.begin("b", "y", 1.0)
    assert store.close_all(9.0) == 2
    assert all(s.status == "lost" for s in store.spans)
    assert store.open_count == 0


def test_open_span_finds_innermost_by_name():
    store = SpanStore()
    store.begin("req:1", "queue", 0.0)
    inner = store.begin("req:1", "queue", 1.0)
    assert store.open_span("req:1", "queue") is inner
    assert store.open_span("req:1", "nope") is None
    assert store.open_span("req:2", "queue") is None


def test_find_filters_by_name_status_and_attrs():
    store = SpanStore()
    a = store.begin("t", "solve", 0.0, category="solve", sed="n1")
    store.end(a, 1.0)
    b = store.begin("t", "solve", 2.0, category="solve", sed="n2")
    store.end(b, 3.0, "aborted")
    assert list(store.find(name="solve", status="ok")) == [a]
    assert list(store.find(sed="n2")) == [b]
    assert store.first(status="aborted") is b
    assert store.by_attr("sed", name="solve") == {"n1": [a], "n2": [b]}


def test_gantt_groups_by_attribute_and_masks_abnormal_ends():
    store = SpanStore()
    a = store.begin("r", "solve", 0.0, category="solve", sed="n1", request_id=2)
    store.end(a, 4.0)
    b = store.begin("r", "solve", 1.0, category="solve", sed="n1", request_id=3)
    store.end(b, 2.0, "aborted")
    chart = store.gantt(category="solve", group_by="sed")
    assert chart == {"n1": [(0.0, 4.0, 2), (1.0, None, 3)]}


def test_marks_tracks_and_extent():
    store = SpanStore()
    span = store.begin("sed:n1", "solve", 1.0)
    store.end(span, 2.0)
    store.mark("sed:n1", "crash", 5.0, reason="test")
    assert store.tracks() == ["sed:n1"]
    assert store.marks[0].attrs == {"reason": "test"}
    assert store.extent() == (1.0, 2.0)


def test_spans_pickle_across_process_boundaries():
    store = SpanStore()
    span = store.begin("t", "solve", 0.0, sed="n1")
    store.end(span, 1.0)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.spans[0].attrs == {"sed": "n1"}
    assert clone.spans[0].duration == 1.0
    assert clone.open_count == 0
