"""Metrics instruments: windowing, percentiles, labels, merging."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_windowing_and_total():
    reg = MetricsRegistry()
    c = reg.counter("reqs")
    c.inc()
    c.inc(2.0, t=10.0)
    c.inc(3.0, t=20.0)
    assert c.value == 6.0
    assert c.window(5.0, 15.0) == 2.0
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_labelled_instruments_are_distinct():
    reg = MetricsRegistry()
    a = reg.counter("solves", sed="n1")
    b = reg.counter("solves", sed="n2")
    assert a is not b
    assert reg.counter("solves", sed="n1") is a
    assert len(reg) == 2
    assert list(reg.collect(name="solves")) == [a, b]
    assert list(reg.collect(kind="gauge")) == []


def test_gauge_at_and_time_weighted_mean():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(1.0, t=0.0)
    g.set(3.0, t=10.0)
    assert g.at(5.0) == 1.0
    assert g.at(10.0) == 3.0
    assert g.at(-1.0) is None
    assert g.time_weighted_mean(0.0, 20.0) == 2.0


def test_histogram_percentile_and_window():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for i in range(10):
        h.observe(float(i), t=float(i))
    assert h.count == 10
    assert h.mean == 4.5
    assert h.percentile(50) == 4.0
    assert h.percentile(100) == 9.0
    assert h.window(2.0, 5.0) == [2.0, 3.0, 4.0]
    with pytest.raises(ValueError):
        h.percentile(101)


def test_merge_adds_counters_and_concatenates_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("n").inc(1.0, t=0.0)
    b.counter("n").inc(2.0, t=1.0)
    b.histogram("h").observe(5.0, t=0.0)
    b.gauge("g").set(7.0, t=0.0)
    a.merge(b)
    assert a.counter("n").value == 3.0
    assert a.counter("n").window(0.0, 2.0) == 3.0
    assert a.histogram("h").count == 1
    assert a.gauge("g").value == 7.0


def test_render_is_stable_text():
    reg = MetricsRegistry()
    reg.counter("reqs", sed="n1").inc(2.0)
    assert reg.render() == 'reqs{sed="n1"} [counter] value=2'
