"""Flat self-time profile aggregation."""

from repro.obs import SpanStore, aggregate_self_times, profile_report


def _store():
    store = SpanStore()
    outer = store.begin("t", "request", 0.0, category="request")
    inner = store.begin("t", "solve", 1.0, category="solve")
    store.end(inner, 9.0)
    store.end(outer, 10.0)
    dead = store.begin("t", "solve", 11.0, category="solve")
    store.end(dead, 12.0, "aborted")
    return store


def test_aggregate_self_times_ok_spans_only():
    rows = aggregate_self_times([_store()])
    by_key = {r.key: r for r in rows}
    assert set(by_key) == {"request:request", "solve:solve"}
    assert by_key["solve:solve"].count == 1
    assert by_key["solve:solve"].self_total == 8.0
    assert by_key["request:request"].self_total == 2.0
    assert rows[0].key == "solve:solve"


def test_aggregate_sums_across_stores():
    rows = aggregate_self_times([_store(), _store()])
    by_key = {r.key: r for r in rows}
    assert by_key["solve:solve"].count == 2
    assert by_key["solve:solve"].self_total == 16.0
    assert by_key["solve:solve"].mean_self == 8.0


def test_profile_report_renders_table():
    text = profile_report([_store()], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo (1 store(s))"
    assert lines[1].startswith("span")
    assert "solve:solve" in lines[2]
    assert "80.0" in lines[2]


def test_profile_report_empty_and_top():
    assert "no spans" in profile_report([SpanStore()])
    text = profile_report([_store()], top=1)
    assert "request:request" not in text
    assert "solve:solve" in text
