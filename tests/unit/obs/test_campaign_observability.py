"""Observability wired through a real campaign.

The contract the tentpole rests on: figure-level numbers derived from the
span store are bit-identical to the trace-derived ones, failure paths never
leak open spans, and span stores survive detach/pickle so parallel sweeps
can aggregate them.
"""

import pickle

import pytest

from repro.__main__ import main
from repro.experiments.runner import collect_span_stores
from repro.obs import NULL_OBS
from repro.services import CampaignConfig, FailurePlan, run_campaign


@pytest.fixture(scope="module")
def observed():
    return run_campaign(CampaignConfig(n_sub_simulations=8, observe=True))


@pytest.fixture(scope="module")
def blind():
    return run_campaign(CampaignConfig(n_sub_simulations=8, observe=False))


def test_figures_identical_with_and_without_spans(observed, blind):
    assert observed.finding_times() == blind.finding_times()
    assert observed.latencies() == blind.latencies()
    assert observed.requests_per_sed() == blind.requests_per_sed()
    assert observed.busy_time_per_sed() == blind.busy_time_per_sed()
    assert observed.gantt() == blind.gantt()
    assert list(observed.overhead_per_request) == list(blind.overhead_per_request)


def test_span_store_present_only_when_observing(observed, blind):
    assert observed.span_store() is not None
    assert blind.span_store() is None
    assert len(NULL_OBS.spans.spans) == 0
    assert len(NULL_OBS.metrics) == 0


def test_healthy_campaign_leaves_no_open_or_abnormal_spans(observed):
    store = observed.span_store()
    assert store.open_count == 0
    assert all(s.status == "ok" for s in store.spans)


def test_request_spans_form_the_expected_hierarchy(observed):
    store = observed.span_store()
    requests = list(store.find(name="request"))
    assert len(requests) == 9  # part 1 + 8 zooms
    for name in ("finding", "transfer", "queue", "init", "solve"):
        spans = list(store.find(name=name, status="ok"))
        assert len(spans) == 9, name
    solves = list(store.find(name="solve", status="ok"))
    assert all("sed" in s.attrs and "cluster" in s.attrs for s in solves)


def test_metrics_registry_populated(observed):
    metrics = observed.obs.metrics
    hist = metrics.histogram("request.finding_seconds")
    assert hist.count == 9
    assert metrics.counter("transport.messages").value > 0


def test_crashes_abort_spans_without_leaking():
    config = CampaignConfig(
        n_sub_simulations=30,
        observe=True,
        failures=FailurePlan(n_crashes=2),
    )
    result = run_campaign(config)
    store = result.span_store()
    assert store.open_count == 0
    assert any(s.status != "ok" for s in store.spans)
    names = [m.name for m in store.marks]
    assert "crash" in names
    crashes = list(result.obs.metrics.collect(name="sed.crashes"))
    assert sum(c.value for c in crashes) >= 1


def test_detached_result_carries_spans_across_pickle(observed):
    detached = observed.detach()
    clone = pickle.loads(pickle.dumps(detached))
    stores = collect_span_stores([clone])
    assert len(stores) == 1
    assert len(stores[0].spans) == len(observed.span_store().spans)


def test_collect_span_stores_skips_blind_results(observed, blind):
    assert collect_span_stores([blind, None]) == []
    assert len(collect_span_stores([observed, blind])) == 1


def test_cli_trace_gantt_profile_outputs(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    gantt = tmp_path / "gantt.svg"
    argv = ["campaign", "--n-sub", "4", "--trace", str(trace), "--profile"]
    argv += ["--gantt-svg", str(gantt)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "profile: campaign" in out
    assert "trace:" in out
    assert trace.exists()
    assert gantt.read_text().startswith("<svg")
