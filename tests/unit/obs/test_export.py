"""Chrome-trace and SVG Gantt exporters."""

import json

from repro.obs import SpanStore, chrome_trace, svg_gantt, write_chrome_trace


def _store():
    store = SpanStore()
    span = store.begin("sed:n1", "solve", 1.5, category="solve", request_id=3)
    store.end(span, 2.5)
    bad = store.begin("sed:n1", "solve", 3.0, category="solve", request_id=4)
    store.end(bad, 3.5, "aborted")
    store.mark("sed:n1", "crash", 4.0)
    return store


def test_chrome_trace_structure():
    doc = chrome_trace(_store(), process_name="test")
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "test"
    assert any(e["args"]["name"] == "sed:n1" for e in meta[1:])
    complete = [e for e in events if e["ph"] == "X"]
    assert complete[0]["ts"] == 1.5e6
    assert complete[0]["dur"] == 1e6
    assert "status" not in complete[0]["args"]
    assert complete[1]["args"]["status"] == "aborted"
    instants = [e for e in events if e["ph"] == "i"]
    assert instants[0]["name"] == "crash"


def test_write_chrome_trace_round_trips(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_store(), str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == 5


def test_svg_gantt_renders_rows_and_abnormal_markers():
    chart = {"n1": [(0.0, 100.0, 1), (50.0, None, 2)], "n2": [(10.0, 60.0, 3)]}
    svg = svg_gantt(chart, width=640, title="test chart")
    assert svg.startswith("<svg ")
    assert svg.endswith("</svg>")
    assert "<title>test chart</title>" in svg
    assert "#d65f5f" in svg
    assert "aborted" in svg
    assert 'width="640"' in svg


def test_svg_gantt_handles_empty_chart():
    svg = svg_gantt({})
    assert svg.startswith("<svg ")
    assert svg.endswith("</svg>")
