"""Unit tests for the DIET data model."""

import numpy as np
import pytest

from repro.core import (
    ArgDesc,
    BaseType,
    CompositeType,
    DataError,
    DietArg,
    Direction,
    FileRef,
    PersistenceMode,
    ProfileError,
    file_desc,
    matrix_desc,
    scalar_desc,
    sizeof_value,
    string_desc,
    vector_desc,
)


class TestBaseTypes:
    def test_c_names(self):
        assert BaseType.INT.cname == "DIET_INT"
        assert BaseType.DOUBLE.cname == "DIET_DOUBLE"

    def test_byte_sizes(self):
        assert BaseType.CHAR.nbytes == 1
        assert BaseType.INT.nbytes == 4
        assert BaseType.DOUBLE.nbytes == 8


class TestPersistence:
    def test_volatile_does_not_keep_server_copy(self):
        assert not PersistenceMode.VOLATILE.keeps_server_copy
        assert PersistenceMode.PERSISTENT.keeps_server_copy

    def test_return_variants(self):
        assert PersistenceMode.VOLATILE.returns_to_client
        assert PersistenceMode.PERSISTENT_RETURN.returns_to_client
        assert not PersistenceMode.PERSISTENT.returns_to_client
        assert not PersistenceMode.STICKY.returns_to_client


class TestSizeof:
    def test_scalar(self):
        assert sizeof_value(CompositeType.SCALAR, BaseType.INT, 5) == 4
        assert sizeof_value(CompositeType.SCALAR, BaseType.DOUBLE, 1.5) == 8

    def test_string_includes_nul(self):
        assert sizeof_value(CompositeType.STRING, BaseType.CHAR, "abc") == 4

    def test_vector_and_matrix(self):
        v = np.zeros(10)
        assert sizeof_value(CompositeType.VECTOR, BaseType.DOUBLE, v) == 80
        m = np.zeros((3, 4), dtype=np.float32)
        assert sizeof_value(CompositeType.MATRIX, BaseType.FLOAT, m) == 48

    def test_file_ref(self):
        ref = FileRef("out.tar.gz", nbytes=12345)
        assert sizeof_value(CompositeType.FILE, BaseType.CHAR, ref) == 12345

    def test_file_tuple(self):
        assert sizeof_value(CompositeType.FILE, BaseType.CHAR, ("p", 99)) == 99

    def test_file_bad_value_raises(self):
        with pytest.raises(DataError):
            sizeof_value(CompositeType.FILE, BaseType.CHAR, "just-a-path")

    def test_none_is_empty(self):
        assert sizeof_value(CompositeType.FILE, BaseType.CHAR, None) == 0


class TestFileRef:
    def test_negative_size_rejected(self):
        with pytest.raises(DataError):
            FileRef("f", nbytes=-1)

    def test_frozen(self):
        ref = FileRef("f", nbytes=1)
        with pytest.raises(Exception):
            ref.nbytes = 2


class TestDietArg:
    def test_get_before_set_raises(self):
        arg = DietArg()
        with pytest.raises(DataError):
            arg.get()

    def test_set_get_roundtrip(self):
        arg = DietArg(desc=scalar_desc(BaseType.INT))
        arg.set(41)
        assert arg.get() == 41
        assert arg.nbytes == 4

    def test_out_declared_null_is_valid_for_submit(self):
        arg = DietArg(desc=file_desc(), direction=Direction.OUT)
        arg.set(None)   # §4.3.1: OUT declared with NULL value
        arg.validate_for_submit()
        assert arg.nbytes == 0

    def test_in_unset_fails_submit(self):
        arg = DietArg(direction=Direction.IN)
        with pytest.raises(ProfileError):
            arg.validate_for_submit()

    def test_out_undeclared_fails_submit(self):
        arg = DietArg(direction=Direction.OUT)
        with pytest.raises(ProfileError):
            arg.validate_for_submit()


class TestDescConstructors:
    def test_constructors_set_composites(self):
        assert scalar_desc().composite is CompositeType.SCALAR
        assert vector_desc().composite is CompositeType.VECTOR
        assert matrix_desc().composite is CompositeType.MATRIX
        assert string_desc().composite is CompositeType.STRING
        assert file_desc().composite is CompositeType.FILE

    def test_describe(self):
        d = ArgDesc(CompositeType.FILE, BaseType.CHAR, PersistenceMode.VOLATILE)
        assert d.describe() == "DIET_FILE/DIET_CHAR/DIET_VOLATILE"
