"""Unit tests for SeD concurrency settings beyond the paper's one-job rule."""

import pytest

from repro.core import (
    BaseType,
    ProfileDesc,
    SeD,
    SeDParams,
    SolveRequest,
    Tracer,
    TransportFabric,
    scalar_desc,
)
from repro.core.requests import new_request_id
from repro.sim import Engine, Host, Link, Network


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(2.0)   # 2 s at unit host speed
    profile.parameter(1).set(1)
    return 0


def build(max_concurrent, cores=4):
    engine = Engine()
    net = Network(engine)
    net.add_host(Host(engine, "cli-host"))
    sed_host = net.add_host(Host(engine, "sed-host", speed=1.0, cores=cores))
    net.connect("cli-host", "sed-host", Link(engine, "l", 1e-4, 1e9))
    fabric = TransportFabric(engine, net)
    sed = SeD(fabric, sed_host, "sed", tracer=Tracer(),
              params=SeDParams(max_concurrent_solves=max_concurrent))
    sed.add_service(toy_desc(), solve_toy)
    sed.launch()
    cli = fabric.endpoint("cli", "cli-host")
    cli.start()
    return engine, sed, cli


def fire(engine, cli, n):
    replies = []

    def call(i):
        profile = toy_desc().instantiate()
        profile.parameter(0).set(i)
        profile.parameter(1).set(None)
        req = SolveRequest(new_request_id(), profile, "cli")
        reply = yield from cli.rpc("sed", "solve", req)
        replies.append(reply)

    for i in range(n):
        engine.process(call(i))
    engine.run()
    return replies


class TestConcurrentSolves:
    def test_capacity_two_overlaps_jobs(self):
        engine, sed, cli = build(max_concurrent=2)
        replies = fire(engine, cli, 4)
        spans = sorted((r.solve_started_at, r.solve_ended_at)
                       for r in replies)
        # first two overlap; third starts only after a slot frees
        assert spans[1][0] < spans[0][1]
        assert spans[2][0] >= min(spans[0][1], spans[1][1]) - 1e-9

    def test_throughput_scales_with_slots(self):
        def makespan(slots):
            engine, _, cli = build(max_concurrent=slots)
            replies = fire(engine, cli, 8)
            return max(r.solve_ended_at for r in replies)

        assert makespan(4) < makespan(1) / 2.5

    def test_n_jobs_counts_running_and_queued(self):
        engine, sed, cli = build(max_concurrent=2)
        samples = []

        def probe():
            yield engine.timeout(1.0)
            samples.append(sed.n_jobs)

        def call(i):
            profile = toy_desc().instantiate()
            profile.parameter(0).set(i)
            profile.parameter(1).set(None)
            req = SolveRequest(new_request_id(), profile, "cli")
            yield from cli.rpc("sed", "solve", req)

        for i in range(5):
            engine.process(call(i))
        engine.process(probe())
        engine.run()
        assert samples == [5]   # 2 running + 3 queued
