"""Unit tests for data-locality-aware scheduling (DTM + scheduler)."""

import numpy as np
import pytest

from repro.core import (
    BaseType,
    DataHandle,
    DataLocalityPolicy,
    EstimationVector,
    PersistenceMode,
    ProfileDesc,
    SchedulingContext,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.core.data import ArgDesc, CompositeType
from repro.platform import build_grid5000
from repro.sim import Engine


class TestPolicyUnit:
    def cands(self, names):
        return [EstimationVector(n, {"EST_SPEED": 1.0}) for n in names]

    def test_prefers_data_owner(self):
        policy = DataLocalityPolicy()
        ctx = SchedulingContext()
        ctx.resident_bytes = {"sed-b": 10 ** 8}
        chosen = policy.choose(self.cands(["sed-a", "sed-b", "sed-c"]), ctx)
        assert chosen.sed_name == "sed-b"

    def test_overloaded_owner_skipped(self):
        policy = DataLocalityPolicy(max_backlog=2)
        ctx = SchedulingContext()
        ctx.resident_bytes = {"sed-b": 10 ** 8}
        for _ in range(4):
            ctx.note_dispatch("sed-b")    # 4 in flight > max_backlog
        chosen = policy.choose(self.cands(["sed-a", "sed-b", "sed-c"]), ctx)
        assert chosen.sed_name != "sed-b"

    def test_no_data_falls_back_to_load(self):
        policy = DataLocalityPolicy()
        ctx = SchedulingContext()
        ctx.note_dispatch("sed-a")
        chosen = policy.choose(self.cands(["sed-a", "sed-b"]), ctx)
        assert chosen.sed_name == "sed-b"

    def test_validation(self):
        with pytest.raises(ValueError):
            DataLocalityPolicy(max_backlog=-1)


def produce_desc():
    desc = ProfileDesc("produce", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, ArgDesc(CompositeType.VECTOR, BaseType.DOUBLE,
                            PersistenceMode.PERSISTENT))
    return desc


def consume_desc():
    desc = ProfileDesc("consume", 0, 0, 1)
    desc.set_arg(0, ArgDesc(CompositeType.VECTOR, BaseType.DOUBLE,
                            PersistenceMode.PERSISTENT))
    desc.set_arg(1, scalar_desc(BaseType.DOUBLE))
    return desc


def solve_produce(profile, ctx):
    yield from ctx.execute(0.5)
    profile.parameter(1).set(np.arange(profile.parameter(0).get(),
                                       dtype=float))
    return 0


def solve_consume(profile, ctx):
    v = profile.parameter(0).get()
    yield from ctx.execute(0.5)
    profile.parameter(1).set(float(np.sum(v)))
    return 0


class TestEndToEndLocality:
    def build(self, policy):
        dep = deploy_paper_hierarchy(build_grid5000(Engine()), policy=policy)
        for sed in dep.seds:
            sed.add_service(produce_desc(), solve_produce)
            sed.add_service(consume_desc(), solve_consume)
        dep.launch_all()
        dep.client.initialize({"MA_name": "MA"})
        return dep

    def run_chain(self, dep, n_consumers=5):
        """Produce once, consume n times; returns (owner, consumers)."""
        client = dep.client
        servers = []

        def session():
            p1 = produce_desc().instantiate()
            p1.parameter(0).set(200_000)
            p1.parameter(1).set(None)
            handle_obj = client.function_handle("produce")
            yield from client.call(p1, handle_obj)
            servers.append(handle_obj.server)
            data = p1.parameter(1).get()
            assert isinstance(data, DataHandle)
            for _ in range(n_consumers):
                p2 = consume_desc().instantiate()
                p2.parameter(0).set(data)
                p2.parameter(1).set(None)
                h2 = client.function_handle("consume")
                yield from client.call(p2, h2)
                servers.append(h2.server)
                assert p2.parameter(1).get() == sum(range(200_000))

        dep.engine.run_process(session())
        return servers[0], servers[1:]

    def test_locality_policy_pins_consumers_to_owner(self):
        dep = self.build(DataLocalityPolicy())
        owner, consumers = self.run_chain(dep)
        assert all(c == owner for c in consumers)

    def test_default_policy_spreads_consumers(self):
        dep = self.build(None)   # default policy
        owner, consumers = self.run_chain(dep)
        assert len(set(consumers)) > 1

    def test_locality_saves_network_bytes(self):
        """The 1.6 MB payload never crosses the network under locality."""
        dep_local = self.build(DataLocalityPolicy())
        self.run_chain(dep_local)
        dep_spread = self.build(None)
        self.run_chain(dep_spread)
        assert (dep_local.fabric.bytes_sent
                < dep_spread.fabric.bytes_sent / 2)
