"""End-to-end persistence-mode semantics on a grid-wired deployment.

Client → MA → SeD calls (no direct manager poking): DIET_PERSISTENT moves
the bytes once per consuming SeD, DIET_STICKY survives eviction pressure,
DIET_VOLATILE leaves no server copy after the reply.
"""

import numpy as np
import pytest

from repro.core import (
    BaseType,
    DataHandle,
    PersistenceMode,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.core.data import ArgDesc, CompositeType, HANDLE_WIRE_BYTES
from repro.data import DataManagerConfig
from repro.platform import build_grid5000
from repro.sim import Engine


def vector_desc(mode):
    return ArgDesc(CompositeType.VECTOR, BaseType.DOUBLE, mode)


def produce_desc(name, mode):
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, vector_desc(mode))
    return desc


def consume_desc():
    desc = ProfileDesc("consume", 0, 0, 1)
    desc.set_arg(0, vector_desc(PersistenceMode.PERSISTENT))
    desc.set_arg(1, scalar_desc(BaseType.DOUBLE))
    return desc


def solve_produce(profile, ctx):
    n = profile.parameter(0).get()
    yield from ctx.execute(0.1)
    profile.parameter(1).set(np.arange(n, dtype=float))
    return 0


def solve_consume(profile, ctx):
    v = profile.parameter(0).get()
    yield from ctx.execute(0.1)
    profile.parameter(1).set(float(np.sum(v)))
    return 0


def _noop_desc():
    desc = ProfileDesc("noop", 0, 0, 0)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    return desc


def _solve_noop(profile, ctx):
    yield from ctx.execute(0.1)
    return 0


def build(config=None):
    dep = deploy_paper_hierarchy(build_grid5000(Engine()),
                                 data=config or DataManagerConfig())
    for sed in dep.seds:
        sed.add_service(_noop_desc(), _solve_noop)
    return dep


def finish(dep):
    dep.launch_all()
    dep.client.initialize({"MA_name": "MA"})
    return dep


def call(dep, profile):
    def run():
        status = yield from dep.client.call(profile)
        return status

    status = dep.engine.run_process(run())
    assert status == 0


def produce(dep, name, n, mode):
    profile = produce_desc(name, mode).instantiate()
    profile.parameter(0).set(n)
    profile.parameter(1).set(None)
    call(dep, profile)
    return profile.parameter(1).get()


class TestPersistentTransferredOnce:
    def test_two_calls_to_same_sed_move_the_bytes_once(self):
        dep = build()
        producer = dep.seds[0]
        consumer = next(s for s in dep.seds
                        if s.cluster != producer.cluster)
        # One candidate per service: MA's choice of SeD is forced, so both
        # consume calls land on the same SeD end to end.
        producer.add_service(produce_desc("produce",
                                          PersistenceMode.PERSISTENT),
                             solve_produce)
        consumer.add_service(consume_desc(), solve_consume)
        finish(dep)

        handle = produce(dep, "produce", 500, PersistenceMode.PERSISTENT)
        assert isinstance(handle, DataHandle)
        assert handle.sed_name == producer.name

        totals = []
        for _ in range(2):
            p = consume_desc().instantiate()
            p.parameter(0).set(handle)
            p.parameter(1).set(None)
            assert p.request_nbytes() == HANDLE_WIRE_BYTES
            call(dep, p)
            totals.append(p.parameter(1).get())

        assert totals == [float(sum(range(500)))] * 2
        stats = dep.data_grid.stats
        # First consume pulls the 4000 payload bytes across the WAN and
        # keeps the copy; the second is a local hit.
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.bytes_moved == 500 * 8
        assert handle.data_id in consumer.data_manager.store


class TestStickySurvivesEviction:
    def test_sticky_stays_resident_under_capacity_pressure(self):
        dep = build(DataManagerConfig(capacity_bytes=2000))
        sed = dep.seds[0]
        sed.add_service(produce_desc("produce_sticky",
                                     PersistenceMode.STICKY),
                        solve_produce)
        sed.add_service(produce_desc("produce",
                                     PersistenceMode.PERSISTENT),
                        solve_produce)
        sed.add_service(consume_desc(), solve_consume)
        finish(dep)

        sticky = produce(dep, "produce_sticky", 100,
                         PersistenceMode.STICKY)          # 800 bytes, pinned
        produce(dep, "produce", 150, PersistenceMode.PERSISTENT)   # 1200
        produce(dep, "produce", 140, PersistenceMode.PERSISTENT)   # 1120
        assert dep.data_grid.stats.evictions >= 1
        assert sticky.data_id in sed.data_manager.store

        # The sticky datum is still consumable where it is pinned.
        p = consume_desc().instantiate()
        p.parameter(0).set(sticky)
        p.parameter(1).set(None)
        call(dep, p)
        assert p.parameter(1).get() == float(sum(range(100)))


class TestVolatileFreedAfterReply:
    def test_no_server_copy_remains(self):
        dep = build()
        sed = dep.seds[0]
        sed.add_service(produce_desc("produce",
                                     PersistenceMode.VOLATILE),
                        solve_produce)
        finish(dep)

        value = produce(dep, "produce", 200, PersistenceMode.VOLATILE)
        # The value came back to the client by copy...
        assert isinstance(value, np.ndarray)
        assert value.shape == (200,)
        # ...and nothing stayed behind: store and catalog are both empty.
        assert len(sed.data_manager.store) == 0
        assert len(dep.data_grid.root) == 0
