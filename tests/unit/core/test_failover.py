"""SeD crash/restart, heartbeat deregistration and client resubmission.

The unit-level contract of the failure subsystem:

- ``SeD.crash()`` interrupts the in-flight solve, dead-letters the request
  (the caller sees :class:`CommunicationError`) and leaks no job slot;
- ``SeD.restart()`` brings a fresh endpoint up under the same name and
  re-registers with the parent LA;
- the LA heartbeat deregisters a persistently silent SeD and re-adds it
  when it announces itself again;
- ``DietClient.call_retry`` resubmits through the MA and a survivor
  absorbs the job; application failures are never retried.
"""

import pytest

from repro.core import (
    AgentParams,
    BaseType,
    CommunicationError,
    DietError,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.platform import build_grid5000
from repro.sim import Engine, FailureInjector, Outage


def toy_desc(name="toy"):
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def slow_solve(profile, ctx):
    yield from ctx.execute(500.0)
    profile.parameter(1).set(1)
    return 0


def fresh_profile(desc, value=1):
    profile = desc.instantiate()
    profile.parameter(0).set(value)
    profile.parameter(1).set(None)
    return profile


def deploy(heartbeat_interval=None):
    params = None
    if heartbeat_interval is not None:
        params = AgentParams(heartbeat_interval=heartbeat_interval,
                             heartbeat_timeout=1.0,
                             heartbeat_miss_threshold=2)
    return deploy_paper_hierarchy(build_grid5000(Engine()),
                                  agent_params=params)


class TestCrash:
    def test_crash_fails_inflight_solve_with_comm_error(self):
        dep = deploy()
        desc = toy_desc()
        for sed in dep.seds:
            sed.add_service(desc, slow_solve)
        dep.launch_all()
        client = dep.client
        victim = {}
        caught = []

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("toy")
            profile = fresh_profile(desc)

            def crash_chosen():
                # Give the MA time to choose and the solve to start.
                yield dep.engine.timeout(5.0)
                sed = dep.sed_by_name(handle.server)
                victim["sed"] = sed
                assert sed.job_slots.count == 1  # solve in flight
                sed.crash()

            dep.engine.process(crash_chosen())
            try:
                yield from client.call(profile, handle)
            except CommunicationError as exc:
                caught.append(exc)

        dep.engine.run_process(run())
        assert caught, "crash must surface as CommunicationError at the caller"
        sed = victim["sed"]
        assert sed.is_down and sed.crash_count == 1
        assert sed.job_slots.count == 0, "crashed solve leaked its job slot"

    def test_crash_twice_raises(self):
        dep = deploy()
        desc = toy_desc()
        for sed in dep.seds:
            sed.add_service(desc, slow_solve)
        dep.launch_all()
        sed = dep.seds[0]
        sed.crash()
        with pytest.raises(DietError):
            sed.crash()

    def test_restart_serves_again_under_same_name(self):
        dep = deploy()
        desc = toy_desc()

        def fast_solve(profile, ctx):
            yield from ctx.execute(1.0)
            profile.parameter(1).set(1)
            return 0

        only = dep.seds[0]
        only.add_service(desc, fast_solve)  # the only SeD able to solve "toy"
        other = toy_desc("other")
        for sed in dep.seds[1:]:
            sed.add_service(other, fast_solve)  # SeDs refuse to launch empty
        dep.launch_all()
        client = dep.client
        injector = FailureInjector(dep.engine)
        injector.schedule(only, [Outage(at=1.0, duration=10.0)])
        statuses = []

        def run():
            client.initialize({"MA_name": "MA"})
            yield dep.engine.timeout(30.0)  # past the restart
            status = yield from client.call(fresh_profile(desc))
            statuses.append(status)

        dep.engine.run_until_complete(run())
        assert statuses == [0]
        assert injector.history[0].name == only.name
        assert only.crash_count == 1 and not only.is_down


class TestHeartbeat:
    def test_dead_sed_deregistered_then_readded_on_restart(self):
        dep = deploy(heartbeat_interval=5.0)
        desc = toy_desc()
        for sed in dep.seds:
            sed.add_service(desc, slow_solve)
        dep.launch_all()
        victim = dep.seds[0]
        la = next(a for a in dep.local_agents
                  if victim.name in a.children)
        injector = FailureInjector(dep.engine)
        injector.schedule(victim, [Outage(at=2.0, duration=40.0)])
        dep.engine.run(until=120.0)
        assert victim.name in la.deregistrations
        # restarted SeD re-announced itself and is a child again
        assert victim.name in la.children
        assert la.heartbeat is not None
        assert any(n == victim.name for n, _ in la.heartbeat.deaths)
        assert any(n == victim.name for n, _ in la.heartbeat.recoveries)

    def test_surviving_seds_never_deregistered(self):
        dep = deploy(heartbeat_interval=5.0)
        desc = toy_desc()
        for sed in dep.seds:
            sed.add_service(desc, slow_solve)
        dep.launch_all()
        dep.engine.run(until=60.0)
        for la in dep.local_agents:
            assert la.deregistrations == []
        assert dep.ma.deregistrations == []


class TestCallRetry:
    def _launch_with_service(self, dep, work=200.0):
        desc = toy_desc()

        def solve(profile, ctx):
            yield from ctx.execute(work)
            profile.parameter(1).set(1)
            return 0

        for sed in dep.seds:
            sed.add_service(desc, solve)
        dep.launch_all()
        return desc

    def test_resubmits_to_survivor_after_crash(self):
        dep = deploy()
        desc = self._launch_with_service(dep)
        client = dep.client
        served_by = []

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("toy")

            def crash_chosen():
                yield dep.engine.timeout(5.0)
                dep.sed_by_name(handle.server).crash()

            dep.engine.process(crash_chosen())
            status = yield from client.call_retry(
                fresh_profile(desc), handle, max_attempts=3)
            served_by.append(handle.server)
            return status

        assert dep.engine.run_process(run()) == 0
        assert client.resubmissions == 1
        assert not dep.sed_by_name(served_by[0]).is_down

    def test_application_failure_not_retried(self):
        dep = deploy()
        desc = toy_desc()

        def solve_fails(profile, ctx):
            yield from ctx.execute(1.0)
            return 7  # application-level failure status

        for sed in dep.seds:
            sed.add_service(desc, solve_fails)
        dep.launch_all()
        client = dep.client

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call_retry(fresh_profile(desc),
                                                 max_attempts=5))

        assert dep.engine.run_process(run()) == 7
        assert client.resubmissions == 0

    def test_max_attempts_validated(self):
        dep = deploy()
        client = dep.client

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call_retry(fresh_profile(toy_desc()),
                                         max_attempts=0)

        with pytest.raises(ValueError):
            dep.engine.run_process(run())
