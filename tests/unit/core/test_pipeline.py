"""Unit tests for the interceptor pipeline and the transport semantics it
guarantees: error propagation, shutdown/unbind dead-lettering, counter
invariants, chain ordering, deadlines/retries and fault injection."""

import pytest

from repro.core import (
    CommunicationError,
    DeadlineExceededError,
    DeadlineInterceptor,
    FaultInjectionInterceptor,
    Interceptor,
    InterceptorPipeline,
    RpcPolicy,
    TransportFabric,
    TransportParams,
)
from repro.sim import Engine, Host, Link, Network

MARSHAL = 1e-3
DISPATCH = 1e-3
HOP = 0.010
# marshal + hop + serialization of the default 256 B control payload
XMIT = MARSHAL + HOP + 256 / 1e6


@pytest.fixture
def stack():
    engine = Engine()
    net = Network(engine)
    for name in ("alpha", "beta"):
        net.add_host(Host(engine, name))
    net.connect("alpha", "beta", Link(engine, "wire", HOP, 1e6))
    fabric = TransportFabric(engine, net,
                             TransportParams(marshal_fixed=MARSHAL,
                                             marshal_per_byte=0.0,
                                             dispatch_fixed=DISPATCH))
    return engine, net, fabric


def echo_server(engine, fabric, name="server", host="beta"):
    server = fabric.endpoint(name, host)

    def echo(msg):
        yield engine.timeout(0.0)
        return (msg.payload, 64)

    server.on("echo", echo)
    server.start()
    return server


class Recorder(Interceptor):
    """Appends (tag, phase, op) to a shared journal — ordering probe."""

    def __init__(self, journal, tag):
        self.journal = journal
        self.tag = tag

    def _note(self, ctx):
        self.journal.append((self.tag, ctx.phase, ctx.op))
        return
        yield  # pragma: no cover

    intercept_send = _note
    intercept_deliver = _note
    intercept_reply = _note
    intercept_complete = _note


class TestErrorPropagation:
    def test_handler_exception_reaches_caller(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def boom(msg):
            yield engine.timeout(0.0)
            raise ValueError("kaboom")

        server.on("boom", boom)
        server.start()

        def call():
            with pytest.raises(ValueError, match="kaboom"):
                yield from client.rpc("server", "boom")
            return True

        assert engine.run_process(call())

    def test_missing_handler_replies_communication_error(self, stack):
        engine, _, fabric = stack
        echo_server(engine, fabric)
        client = fabric.endpoint("client", "alpha")

        def call():
            with pytest.raises(CommunicationError, match="no handler"):
                yield from client.rpc("server", "nosuch")
            return True

        assert engine.run_process(call())

    def test_missing_handler_reply_is_counted(self, stack):
        engine, _, fabric = stack
        echo_server(engine, fabric)
        client = fabric.endpoint("client", "alpha")

        def call():
            try:
                yield from client.rpc("server", "nosuch", nbytes=100)
            except CommunicationError:
                pass

        engine.run_process(call())
        # request (100 B) + error reply (128 B) both crossed the wire
        assert fabric.messages_sent == 2
        assert fabric.bytes_sent == 228


class TestShutdownSemantics:
    def test_stop_dead_letters_queued_requests(self, stack):
        """A request sitting in a never-started endpoint's mailbox must fail
        its caller on stop(), not strand it forever."""
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")   # never started
        server.on("echo", lambda msg: iter(()))
        client = fabric.endpoint("client", "alpha")
        outcome = {}

        def call():
            try:
                outcome["value"] = yield from client.rpc("server", "echo", 1)
            except CommunicationError as exc:
                outcome["error"] = str(exc)

        engine.process(call())
        engine.run()                      # request delivered, caller parked
        assert outcome == {}
        assert len(server.mailbox) == 1
        server.stop()
        engine.run()
        assert "stopped" in outcome["error"]
        assert fabric.accounting.dead_letters == 1

    def test_unbind_fails_rpc_in_server_handler(self, stack):
        """Unbinding the server while it is solving must resume the caller
        with CommunicationError — and must not crash the engine."""
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def slow(msg):
            yield engine.timeout(1.0)
            return ("done", 8)

        server.on("slow", slow)
        server.start()
        outcome = {}

        def call():
            try:
                outcome["value"] = yield from client.rpc("server", "slow")
            except CommunicationError as exc:
                outcome["error"] = str(exc)

        def killer():
            yield engine.timeout(0.5)
            fabric.unbind("server")

        engine.process(call())
        engine.process(killer())
        engine.run()
        assert "stopped" in outcome["error"]

    def test_unbind_mid_transfer_raises_in_sender(self, stack):
        """Destination vanishing while the message is on the wire surfaces
        as CommunicationError in the sender."""
        engine, _, fabric = stack
        echo_server(engine, fabric)
        client = fabric.endpoint("client", "alpha")
        outcome = {}

        def call():
            try:
                yield from client.rpc("server", "echo", 1)
            except CommunicationError as exc:
                outcome["error"] = str(exc)

        def killer():
            # after marshalling (1 ms), during the 10 ms network hop
            yield engine.timeout(MARSHAL + HOP / 2)
            fabric.unbind("server")

        engine.process(call())
        engine.process(killer())
        engine.run()
        assert "server" in outcome["error"]

    def test_caller_unbound_before_reply_does_not_crash(self, stack):
        """The reply path must tolerate the *caller* having been unbound
        (the old code resolved it and crashed the engine)."""
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def slow(msg):
            yield engine.timeout(1.0)
            return ("done", 8)

        server.on("slow", slow)
        server.start()
        outcome = {}

        def call():
            try:
                outcome["value"] = yield from client.rpc("server", "slow")
            except CommunicationError as exc:
                outcome["error"] = str(exc)

        def killer():
            yield engine.timeout(0.5)
            fabric.unbind("client")

        engine.process(call())
        engine.process(killer())
        engine.run()   # must not raise
        assert "unbound" in outcome["error"]
        assert fabric.accounting.dead_letters == 1

    def test_send_to_stopped_endpoint_raises(self, stack):
        engine, _, fabric = stack
        server = echo_server(engine, fabric)
        client = fabric.endpoint("client", "alpha")
        server.stop()

        def send():
            with pytest.raises(CommunicationError):
                yield from client.send("server", "echo", 1)
            return True

        assert engine.run_process(send())


class TestCounters:
    def test_messages_and_bytes_by_op(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def ack(msg):
            yield engine.timeout(0.0)
            return ("ok", 10)

        server.on("op", ack)
        server.start()

        def call():
            for _ in range(3):
                yield from client.rpc("server", "op", None, nbytes=500)
            yield from client.send("server", "other", None, nbytes=7)

        engine.run_process(call())
        engine.run()
        acc = fabric.accounting
        # 3 requests + 3 replies + 1 one-way
        assert fabric.messages_sent == 7
        assert fabric.bytes_sent == 3 * (500 + 10) + 7
        assert acc.messages_by_op == {"op": 6, "other": 1}
        assert acc.dead_letters == 0
        assert acc.messages_dropped == 0
        assert acc.replies_suppressed == 0

    def test_dropped_message_not_counted_on_wire(self, stack):
        engine, _, fabric = stack
        echo_server(engine, fabric)
        client = fabric.endpoint(
            "client", "alpha",
            interceptors=[FaultInjectionInterceptor(phases=("send",))])
        fault = client.pipeline.find(FaultInjectionInterceptor)
        fault.drop_next(1)

        def send():
            yield from client.send("server", "echo", 1, nbytes=1000)

        engine.run_process(send())
        engine.run()
        # endpoint chain runs before the fabric's accounting on send
        assert fabric.messages_sent == 0
        assert fabric.bytes_sent == 0
        assert fabric.accounting.messages_dropped == 1
        assert fault.dropped == 1


class TestChainOrdering:
    def test_endpoint_wraps_fabric_like_a_stack(self, stack):
        """Outbound phases run endpoint-then-fabric; inbound the reverse."""
        engine, _, fabric = stack
        journal = []
        fabric.pipeline.add(Recorder(journal, "fabric"))
        server = fabric.endpoint(
            "server", "beta", interceptors=[Recorder(journal, "server")])
        client = fabric.endpoint(
            "client", "alpha", interceptors=[Recorder(journal, "client")])

        def ack(msg):
            yield engine.timeout(0.0)
            return ("ok", 8)

        server.on("op", ack)
        server.start()

        def call():
            yield from client.rpc("server", "op")

        engine.run_process(call())
        assert journal == [
            ("client", "send", "op"),       # outbound: endpoint, then fabric
            ("fabric", "send", "op"),
            ("fabric", "deliver", "op"),    # inbound: fabric, then endpoint
            ("server", "deliver", "op"),
            ("server", "reply", "op"),      # outbound again, replier side
            ("fabric", "reply", "op"),
            ("fabric", "complete", "op"),   # inbound again, caller side
            ("client", "complete", "op"),
        ]

    def test_installation_order_within_a_chain(self, stack):
        engine, _, fabric = stack
        journal = []
        server = echo_server(engine, fabric)
        client = fabric.endpoint("client", "alpha")
        client.pipeline.add(Recorder(journal, "first"))
        client.pipeline.add(Recorder(journal, "second"))

        def call():
            yield from client.rpc("server", "echo", 1)

        engine.run_process(call())
        sends = [tag for tag, phase, _ in journal if phase == "send"]
        assert sends == ["first", "second"]

    def test_pipeline_add_remove_find(self, stack):
        pipeline = InterceptorPipeline()
        a, b = Interceptor(), DeadlineInterceptor(1.0)
        pipeline.add(a)
        pipeline.add(b, index=0)
        assert pipeline.interceptors == [b, a]
        assert pipeline.find(DeadlineInterceptor) is b
        pipeline.remove(b)
        assert pipeline.find(DeadlineInterceptor) is None


class TestDeadlines:
    def test_deadline_exceeded_raises(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint(
            "client", "alpha", interceptors=[DeadlineInterceptor(0.5)])

        def stall(msg):
            yield engine.timeout(1e9)
            return ("late", 8)

        server.on("stall", stall)
        server.start()

        def call():
            with pytest.raises(DeadlineExceededError):
                yield from client.rpc("server", "stall")
            return engine.now

        # the deadline clock starts once the request is on the wire
        assert engine.run_process(call(), until=1e8) == pytest.approx(0.5 + XMIT)

    def test_ops_filter_limits_policy(self, stack):
        engine, _, fabric = stack
        echo_server(engine, fabric)
        client = fabric.endpoint(
            "client", "alpha",
            interceptors=[DeadlineInterceptor(0.5, ops=("other",))])

        assert client.pipeline.rpc_policy("other") == RpcPolicy(0.5)
        assert client.pipeline.rpc_policy("echo") is None

        def call():
            return (yield from client.rpc("server", "echo", 42))

        assert engine.run_process(call()) == 42

    def test_retry_recovers_dropped_request(self, stack):
        """FaultInjection drops the first request; the DeadlineInterceptor's
        retry re-sends it and the RPC still succeeds."""
        engine, _, fabric = stack
        server = echo_server(engine, fabric)
        fault = server.pipeline.add(
            FaultInjectionInterceptor(ops=("echo",), phases=("deliver",)))
        fault.drop_next(1)
        client = fabric.endpoint(
            "client", "alpha",
            interceptors=[DeadlineInterceptor(0.5, retries=1)])

        def call():
            value = yield from client.rpc("server", "echo", 42)
            return value, engine.now

        value, elapsed = engine.run_process(call(), until=1e8)
        assert value == 42
        assert fault.dropped == 1
        assert elapsed > 0.5              # one full deadline was spent

    def test_retries_exhausted_raises(self, stack):
        engine, _, fabric = stack
        server = echo_server(engine, fabric)
        fault = server.pipeline.add(
            FaultInjectionInterceptor(phases=("deliver",)))
        fault.drop_next(10)
        client = fabric.endpoint(
            "client", "alpha",
            interceptors=[DeadlineInterceptor(0.25, retries=2, backoff=0.1)])

        def call():
            with pytest.raises(DeadlineExceededError, match="3 attempt"):
                yield from client.rpc("server", "echo", 1)
            return engine.now

        # 3 (transmit + deadline) rounds + backoff 0.1 * 1 + 0.1 * 2
        elapsed = engine.run_process(call(), until=1e8)
        assert elapsed == pytest.approx(3 * (0.25 + XMIT) + 0.1 + 0.2)
        assert fault.dropped == 3


class TestFaultInjection:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            FaultInjectionInterceptor(phases=("teleport",))
        with pytest.raises(ValueError):
            FaultInjectionInterceptor(drop=1.5)
        with pytest.raises(ValueError):
            DeadlineInterceptor(0.0)
        with pytest.raises(ValueError):
            DeadlineInterceptor(1.0, retries=-1)

    def test_delay_slows_delivery(self, stack):
        engine, _, fabric = stack
        server = echo_server(engine, fabric)
        server.pipeline.add(
            FaultInjectionInterceptor(delay=5.0, phases=("deliver",)))
        client = fabric.endpoint("client", "alpha")

        def call():
            value = yield from client.rpc("server", "echo", 7)
            return value, engine.now

        value, elapsed = engine.run_process(call())
        assert value == 7
        assert elapsed > 5.0

    def test_duplicate_reply_suppressed(self, stack):
        """A duplicated request produces two replies; at-most-once delivery
        suppresses the second instead of double-triggering the event."""

        class AlwaysDup:
            def random(self):
                return 0.0   # every probabilistic draw fires

        engine, _, fabric = stack
        server = echo_server(engine, fabric)
        client = fabric.endpoint(
            "client", "alpha",
            interceptors=[FaultInjectionInterceptor(
                rng=AlwaysDup(), duplicate=1.0, phases=("send",))])
        results = []

        def call():
            value = yield from client.rpc("server", "echo", 5)
            results.append(value)

        engine.run_process(call())
        engine.run()
        assert results == [5]
        assert fabric.accounting.replies_suppressed == 1

    def test_probabilistic_drop_uses_rng_stream(self, stack):
        from repro.sim.rng import RandomStreams

        engine, _, fabric = stack
        server = echo_server(engine, fabric)
        fault = server.pipeline.add(FaultInjectionInterceptor(
            rng=RandomStreams(7).get("faults"), drop=0.5, phases=("deliver",)))
        client = fabric.endpoint(
            "client", "alpha",
            interceptors=[DeadlineInterceptor(0.1, retries=5)])
        ok = []

        def call(i):
            try:
                ok.append((yield from client.rpc("server", "echo", i)))
            except DeadlineExceededError:
                pass

        for i in range(20):
            engine.process(call(i))
        engine.run()
        assert fault.dropped > 0
        assert len(ok) == 20          # retries recovered every drop
