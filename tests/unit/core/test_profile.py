"""Unit tests for profile descriptions and the service table."""

import pytest

from repro.core import (
    BaseType,
    Direction,
    FileRef,
    PersistenceMode,
    Profile,
    ProfileDesc,
    ProfileError,
    ServiceNotFoundError,
    ServiceTable,
    file_desc,
    scalar_desc,
)
from repro.core.data import HANDLE_WIRE_BYTES, ArgDesc


def ramses_zoom2_desc():
    """The paper's diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8)."""
    desc = ProfileDesc("ramsesZoom2", 6, 6, 8)
    desc.set_arg(0, file_desc())
    for i in range(1, 7):
        desc.set_arg(i, scalar_desc(BaseType.INT))
    desc.set_arg(7, file_desc())
    desc.set_arg(8, scalar_desc(BaseType.INT))
    return desc


class TestProfileDesc:
    def test_paper_profile_layout(self):
        desc = ramses_zoom2_desc()
        assert desc.n_args == 9
        assert [desc.direction(i) for i in range(7)] == [Direction.IN] * 7
        assert desc.direction(7) is Direction.OUT
        assert desc.direction(8) is Direction.OUT

    def test_inout_region(self):
        desc = ProfileDesc("svc", 0, 2, 4)
        assert desc.direction(0) is Direction.IN
        assert desc.direction(1) is Direction.INOUT
        assert desc.direction(2) is Direction.INOUT
        assert desc.direction(3) is Direction.OUT

    def test_no_in_arguments(self):
        desc = ProfileDesc("pure-out", -1, -1, 0)
        assert desc.direction(0) is Direction.OUT

    def test_bad_indices_rejected(self):
        with pytest.raises(ProfileError):
            ProfileDesc("bad", 3, 2, 5)   # last_inout < last_in
        with pytest.raises(ProfileError):
            ProfileDesc("bad", -2, -1, 0)

    def test_empty_path_rejected(self):
        with pytest.raises(ProfileError):
            ProfileDesc("", 0, 0, 0)

    def test_arg_index_bounds(self):
        desc = ProfileDesc("svc", 0, 0, 1)
        with pytest.raises(ProfileError):
            desc.set_arg(2, scalar_desc())
        with pytest.raises(ProfileError):
            desc.direction(-1)

    def test_matching(self):
        assert ramses_zoom2_desc().matches(ramses_zoom2_desc())

    def test_mismatch_on_type(self):
        a = ramses_zoom2_desc()
        b = ramses_zoom2_desc()
        b.set_arg(1, scalar_desc(BaseType.DOUBLE))
        assert not a.matches(b)

    def test_mismatch_on_name(self):
        a = ramses_zoom2_desc()
        b = ramses_zoom2_desc()
        b.path = "ramsesZoom1"
        assert not a.matches(b)

    def test_signature_renders(self):
        sig = ramses_zoom2_desc().signature()
        assert sig.startswith("ramsesZoom2(")
        assert "IN:DIET_FILE" in sig and "OUT:DIET_SCALAR" in sig


class TestProfile:
    def test_instantiate_allocates_all_slots(self):
        profile = ramses_zoom2_desc().instantiate()
        assert len(profile.arguments) == 9
        assert profile.parameter(7).direction is Direction.OUT

    def test_parameter_bounds(self):
        profile = ramses_zoom2_desc().instantiate()
        with pytest.raises(ProfileError):
            profile.parameter(9)

    def test_request_and_response_sizes(self):
        profile = ramses_zoom2_desc().instantiate()
        profile.parameter(0).set(FileRef("nml", nbytes=2000))
        for i in range(1, 7):
            profile.parameter(i).set(i)
        profile.parameter(7).set(None)
        profile.parameter(8).set(None)
        assert profile.request_nbytes() == 2000 + 6 * 4
        assert profile.response_nbytes() == 0
        # after the solve fills the OUTs:
        profile.parameter(7).set(FileRef("results.tgz", nbytes=5_000_000))
        profile.parameter(8).set(0)
        assert profile.response_nbytes() == 5_000_000 + 4

    def test_persistent_out_returns_only_the_handle(self):
        desc = ProfileDesc("svc", -1, -1, 0)
        desc.set_arg(0, ArgDesc(persistence=PersistenceMode.PERSISTENT))
        profile = desc.instantiate()
        # Declared but unset: nothing on the wire yet.
        assert profile.response_nbytes() == 0
        # Produced: the value stays on the SeD, the reply carries exactly
        # one fixed-size reference — never the value's bytes.
        profile.parameter(0).set(5)
        assert profile.response_nbytes() == HANDLE_WIRE_BYTES

    def test_validate_for_submit_reports_argument_index(self):
        profile = ramses_zoom2_desc().instantiate()
        profile.parameter(0).set(FileRef("nml", nbytes=10))
        with pytest.raises(ProfileError, match="argument 1"):
            profile.validate_for_submit()

    def test_direction_filters(self):
        profile = ramses_zoom2_desc().instantiate()
        assert len(profile.in_args()) == 7
        assert len(profile.inout_args()) == 0
        assert len(profile.out_args()) == 2


class TestServiceTable:
    def solve(self, profile, ctx):
        yield
        return 0

    def test_add_and_lookup(self):
        table = ServiceTable()
        desc = ramses_zoom2_desc()
        table.add(desc, None, self.solve)
        found_desc, func = table.lookup("ramsesZoom2")
        assert found_desc is desc and func == self.solve

    def test_lookup_missing_raises(self):
        with pytest.raises(ServiceNotFoundError):
            ServiceTable().lookup("nope")

    def test_duplicate_rejected(self):
        table = ServiceTable()
        table.add(ramses_zoom2_desc(), None, self.solve)
        with pytest.raises(ProfileError, match="already registered"):
            table.add(ramses_zoom2_desc(), None, self.solve)

    def test_capacity(self):
        table = ServiceTable(max_size=1)
        table.add(ramses_zoom2_desc(), None, self.solve)
        with pytest.raises(ProfileError, match="full"):
            table.add(ProfileDesc("other", 0, 0, 0), None, self.solve)

    def test_can_solve_checks_structure(self):
        table = ServiceTable()
        table.add(ramses_zoom2_desc(), None, self.solve)
        assert table.can_solve(ramses_zoom2_desc())
        different = ramses_zoom2_desc()
        different.set_arg(1, scalar_desc(BaseType.DOUBLE))
        assert not table.can_solve(different)

    def test_non_callable_solve_rejected(self):
        with pytest.raises(ProfileError):
            ServiceTable().add(ramses_zoom2_desc(), None, "not-callable")

    def test_print_table(self):
        table = ServiceTable()
        table.add(ramses_zoom2_desc(), None, self.solve)
        text = table.print_table()
        assert "ramsesZoom2" in text and "1/64" in text
