"""Unit tests for the GridRPC facade (§4.3.1: grpc_* mirrors diet_*)."""

import pytest

from repro.core import BaseType, ProfileDesc, deploy_paper_hierarchy, scalar_desc
from repro.core.gridrpc import (
    grpc_call,
    grpc_call_async,
    grpc_finalize,
    grpc_function_handle_default,
    grpc_initialize,
    grpc_probe,
    grpc_profile_alloc,
    grpc_wait,
    grpc_wait_all,
)
from repro.core.exceptions import GRPC_NO_ERROR, NotCompletedError
from repro.platform import build_grid5000
from repro.sim import Engine


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(profile.parameter(0).get() * 10)
    return 0


@pytest.fixture
def deployment():
    dep = deploy_paper_hierarchy(build_grid5000(Engine()))
    for sed in dep.seds:
        sed.add_service(toy_desc(), solve_toy)
    dep.launch_all()
    return dep


def test_full_gridrpc_session(deployment):
    """The canonical GridRPC client flow, §4.3.1 structure."""
    client, engine = deployment.client, deployment.engine

    def main():
        assert grpc_initialize(client, {"MA_name": "MA"}) == GRPC_NO_ERROR
        handle = grpc_function_handle_default(client, "toy")
        profile = grpc_profile_alloc(toy_desc())
        profile.parameter(0).set(4)
        profile.parameter(1).set(None)
        status = yield from grpc_call(client, handle, profile)
        assert status == 0
        assert profile.parameter(1).get() == 40
        assert handle.server is not None
        assert grpc_finalize(client) == GRPC_NO_ERROR

    engine.run_process(main())


def test_async_session(deployment):
    client, engine = deployment.client, deployment.engine

    def main():
        grpc_initialize(client, {"MA_name": "MA"})
        handle = grpc_function_handle_default(client, "toy")
        profiles = []
        requests = []
        for i in range(3):
            profile = grpc_profile_alloc(toy_desc())
            profile.parameter(0).set(i)
            profile.parameter(1).set(None)
            profiles.append(profile)
            requests.append(grpc_call_async(client, handle, profile))
        with pytest.raises(NotCompletedError):
            grpc_probe(client, requests[0].request_id)
        status = yield from grpc_wait(requests[0])
        assert status == 0
        statuses = yield from grpc_wait_all(client)
        assert set(statuses.values()) == {0}
        assert [p.parameter(1).get() for p in profiles] == [0, 10, 20]

    engine.run_process(main())


def test_profile_alloc_allocates_all_descriptions(deployment):
    """§4.3.2: no further allocation is required after profile_alloc."""
    profile = grpc_profile_alloc(toy_desc())
    assert len(profile.arguments) == 2
    for arg in profile.arguments:
        assert arg.desc is not None
