"""Unit tests for the CORBA-substitute transport fabric."""

import pytest

from repro.core import CommunicationError, TransportFabric, TransportParams
from repro.sim import Engine, Host, Link, Network


@pytest.fixture
def stack():
    engine = Engine()
    net = Network(engine)
    for name in ("alpha", "beta"):
        net.add_host(Host(engine, name))
    net.connect("alpha", "beta", Link(engine, "wire", 0.010, 1e6))
    fabric = TransportFabric(engine, net,
                             TransportParams(marshal_fixed=1e-3,
                                             marshal_per_byte=0.0,
                                             dispatch_fixed=1e-3))
    return engine, net, fabric


class TestNaming:
    def test_endpoint_registration_and_resolve(self, stack):
        _, _, fabric = stack
        ep = fabric.endpoint("svc", "alpha")
        assert fabric.resolve("svc") is ep

    def test_duplicate_name_rejected(self, stack):
        _, _, fabric = stack
        fabric.endpoint("svc", "alpha")
        with pytest.raises(CommunicationError):
            fabric.endpoint("svc", "beta")

    def test_resolve_unknown_raises(self, stack):
        _, _, fabric = stack
        with pytest.raises(CommunicationError):
            fabric.resolve("ghost")

    def test_endpoint_requires_existing_host(self, stack):
        _, _, fabric = stack
        with pytest.raises(Exception):
            fabric.endpoint("svc", "nonexistent-host")

    def test_unbind(self, stack):
        _, _, fabric = stack
        fabric.endpoint("svc", "alpha")
        fabric.unbind("svc")
        with pytest.raises(CommunicationError):
            fabric.resolve("svc")


class TestRpc:
    def test_request_reply_roundtrip(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def double(msg):
            yield engine.timeout(0.0)
            return (msg.payload * 2, 64)

        server.on("double", double)
        server.start()

        def call():
            result = yield from client.rpc("server", "double", 21)
            return result, engine.now

        value, elapsed = engine.run_process(call())
        assert value == 42
        # 2 network hops (10ms each) + marshalling/dispatch costs
        assert elapsed > 0.020

    def test_handler_exception_propagates_to_caller(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def boom(msg):
            yield engine.timeout(0.0)
            raise ValueError("server-side failure")

        server.on("boom", boom)
        server.start()

        def call():
            try:
                yield from client.rpc("server", "boom", None)
            except ValueError as exc:
                return str(exc)

        assert engine.run_process(call()) == "server-side failure"

    def test_unknown_operation_fails_rpc(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")
        server.start()

        def call():
            try:
                yield from client.rpc("server", "nosuch", None)
            except CommunicationError as exc:
                return "no handler" in str(exc)

        assert engine.run_process(call()) is True

    def test_one_way_send_no_reply(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")
        seen = []

        def note(msg):
            yield engine.timeout(0.0)
            seen.append(msg.payload)

        server.on("note", note)
        server.start()

        def send():
            yield from client.send("server", "note", "fire-and-forget")

        engine.run_process(send())
        engine.run()
        assert seen == ["fire-and-forget"]

    def test_payload_size_charges_transfer_time(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def ack(msg):
            yield engine.timeout(0.0)
            return ("ok", 64)

        server.on("op", ack)
        server.start()

        def call(nbytes):
            t0 = engine.now
            yield from client.rpc("server", "op", None, nbytes=nbytes)
            return engine.now - t0

        small = engine.run_process(call(100))
        engine2, _, fabric2 = Engine(), None, None  # fresh run for big
        # reuse same engine: sequential calls are fine
        big_proc = engine.process(call(2_000_000))
        engine.run()
        big = big_proc.value
        assert big > small + 1.5   # 2MB at 1MB/s

    def test_counters(self, stack):
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def ack(msg):
            yield engine.timeout(0.0)
            return ("ok", 10)

        server.on("op", ack)
        server.start()

        def call():
            yield from client.rpc("server", "op", None, nbytes=500)

        engine.run_process(call())
        assert fabric.messages_sent == 2
        assert fabric.bytes_sent == 510

    def test_concurrent_handlers_do_not_block_mailbox(self, stack):
        """A slow solve must not delay estimate replies (the SeD pattern)."""
        engine, _, fabric = stack
        server = fabric.endpoint("server", "beta")
        client = fabric.endpoint("client", "alpha")

        def slow(msg):
            yield engine.timeout(100.0)
            return ("slow-done", 8)

        def fast(msg):
            yield engine.timeout(0.001)
            return ("fast-done", 8)

        server.on("slow", slow)
        server.on("fast", fast)
        server.start()

        results = []

        def caller(op):
            value = yield from client.rpc("server", op, None)
            results.append((op, engine.now))
            return value

        engine.process(caller("slow"))
        engine.process(caller("fast"))
        engine.run()
        assert results[0][0] == "fast"
        assert results[0][1] < 1.0
