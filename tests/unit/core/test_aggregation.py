"""Unit tests for the push-mode materialized candidate tables."""

import pytest

from repro.core.aggregation import AggregationTable, ServiceTable, rank_key
from repro.core.requests import EstimateDelta
from repro.core.scheduling import EST_NBJOBS, EST_SPEED, EstimationVector


def vec(sed, n_jobs=0.0, speed=1.0):
    return EstimationVector(sed_name=sed,
                            values={EST_NBJOBS: n_jobs, EST_SPEED: speed})


def upd(sed, n_jobs=0.0, speed=1.0, seq=1, service="toy", host=None):
    return (service, vec(sed, n_jobs, speed), host or f"{sed}-host", seq)


class TestServiceTable:
    def test_update_inserts_ranked(self):
        tbl = ServiceTable("toy")
        tbl.update("B", vec("B", n_jobs=1.0), "hB", "LA0", 1)
        tbl.update("A", vec("A", n_jobs=0.0), "hA", "LA0", 1)
        tbl.update("C", vec("C", n_jobs=0.0, speed=2.0), "hC", "LA0", 1)
        # fewest jobs first, faster first among ties
        assert [r.sed_name for r in tbl.top()] == ["C", "A", "B"]

    def test_top_k_cut(self):
        tbl = ServiceTable("toy")
        for i in range(5):
            tbl.update(f"S{i}", vec(f"S{i}", n_jobs=float(i)), "h", "LA0", 1)
        assert [r.sed_name for r in tbl.top(2)] == ["S0", "S1"]

    def test_refresh_rerank(self):
        tbl = ServiceTable("toy")
        tbl.update("A", vec("A", n_jobs=0.0), "hA", "LA0", 1)
        tbl.update("B", vec("B", n_jobs=1.0), "hB", "LA0", 1)
        assert tbl.update("A", vec("A", n_jobs=5.0), "hA", "LA0", 2)
        assert [r.sed_name for r in tbl.top()] == ["B", "A"]
        assert len(tbl) == 2

    def test_stale_seq_discarded(self):
        tbl = ServiceTable("toy")
        tbl.update("A", vec("A", n_jobs=2.0), "hA", "LA0", seq=5)
        assert not tbl.update("A", vec("A", n_jobs=0.0), "hA", "LA0", seq=5)
        assert not tbl.update("A", vec("A", n_jobs=0.0), "hA", "LA0", seq=4)
        assert tbl.top()[0].vector.get(EST_NBJOBS) == 2.0

    def test_remove(self):
        tbl = ServiceTable("toy")
        tbl.update("A", vec("A"), "hA", "LA0", 1)
        assert tbl.remove("A")
        assert not tbl.remove("A")
        assert tbl.top() == []

    def test_rank_key_unique_per_sed(self):
        # Identical vectors must still produce distinct keys (the order
        # list relies on uniqueness for exact removal).
        assert rank_key(vec("A"), "A") != rank_key(vec("B"), "B")


class TestAggregationTable:
    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            AggregationTable(top_k=0)
        AggregationTable(top_k=1)  # boundary is legal

    def test_apply_delta_and_candidates(self):
        agg = AggregationTable()
        assert agg.apply_delta(EstimateDelta("LA0", [upd("A"), upd("B", 1.0)]))
        assert [r.sed_name for r in agg.candidates("toy")] == ["A", "B"]
        assert all(r.via == "LA0" for r in agg.candidates("toy"))
        assert agg.deltas_applied == 1
        assert agg.candidates("unknown") == []

    def test_noop_delta_reports_unchanged(self):
        agg = AggregationTable()
        agg.apply_delta(EstimateDelta("LA0", [upd("A", seq=3)]))
        assert not agg.apply_delta(EstimateDelta("LA0", [upd("A", seq=3)]))
        assert not agg.apply_delta(
            EstimateDelta("LA0", [], removals=[("toy", "ghost")]))
        assert agg.deltas_applied == 1

    def test_removal_delta(self):
        agg = AggregationTable()
        agg.apply_delta(EstimateDelta("LA0", [upd("A"), upd("B")]))
        assert agg.apply_delta(
            EstimateDelta("LA0", [], removals=[("toy", "A")]))
        assert [r.sed_name for r in agg.candidates("toy")] == ["B"]

    def test_drop_via_invalidates_provenance(self):
        agg = AggregationTable()
        agg.apply_delta(EstimateDelta("LA0", [upd("A"), upd("B")]))
        agg.apply_delta(EstimateDelta("LA1", [upd("C")]))
        assert agg.drop_via("LA0")
        assert [r.sed_name for r in agg.candidates("toy")] == ["C"]
        assert agg.rows_invalidated == 2
        assert not agg.drop_via("LA0")  # already gone

    def test_export_diff_ships_only_changes(self):
        agg = AggregationTable()
        agg.apply_delta(EstimateDelta("LA0", [upd("A", seq=1)]))
        updates, removals = agg.export_diff()
        assert [u[1].sed_name for u in updates] == ["A"] and not removals
        # unchanged view -> empty diff
        assert agg.export_diff() == ([], [])
        # refresh A, add B: both travel, nothing else
        agg.apply_delta(EstimateDelta("LA0", [upd("A", 1.0, seq=2),
                                              upd("B", seq=1)]))
        updates, removals = agg.export_diff()
        assert sorted(u[1].sed_name for u in updates) == ["A", "B"]
        assert not removals

    def test_export_diff_emits_removals(self):
        agg = AggregationTable()
        agg.apply_delta(EstimateDelta("LA0", [upd("A"), upd("B")]))
        agg.export_diff()
        agg.drop_via("LA0")
        updates, removals = agg.export_diff()
        assert not updates
        assert sorted(removals) == [("toy", "A"), ("toy", "B")]

    def test_export_diff_respects_top_k(self):
        agg = AggregationTable(top_k=1)
        agg.apply_delta(EstimateDelta("LA0", [upd("A", 0.0), upd("B", 1.0)]))
        updates, _ = agg.export_diff()
        # only the best row crosses the top-k cut
        assert [u[1].sed_name for u in updates] == ["A"]
        # B overtakes A -> B travels as an update, A as a removal
        agg.apply_delta(EstimateDelta("LA0", [upd("A", 5.0, seq=2)]))
        updates, removals = agg.export_diff()
        assert [u[1].sed_name for u in updates] == ["B"]
        assert removals == [("toy", "A")]

    def test_wire_bytes_scale_with_rows(self):
        small = EstimateDelta("LA0", [upd("A")])
        big = EstimateDelta("LA0", [upd("A"), upd("B")],
                            removals=[("toy", "C")])
        assert big.wire_bytes() > small.wire_bytes() > 0
