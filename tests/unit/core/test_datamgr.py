"""Unit tests for persistent data management (DTM) and call cancellation."""

import numpy as np
import pytest

from repro.core import (
    BaseType,
    DataHandle,
    PersistenceMode,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.core.data import ArgDesc, CompositeType, HANDLE_WIRE_BYTES, sizeof_value
from repro.core.gridrpc import grpc_cancel
from repro.platform import build_grid5000
from repro.sim import Engine


def persistent_vector_desc(mode=PersistenceMode.PERSISTENT):
    return ArgDesc(CompositeType.VECTOR, BaseType.DOUBLE, mode)


def produce_desc(mode=PersistenceMode.PERSISTENT):
    desc = ProfileDesc("produce", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, persistent_vector_desc(mode))
    return desc


def consume_desc():
    desc = ProfileDesc("consume", 0, 0, 1)
    desc.set_arg(0, persistent_vector_desc())
    desc.set_arg(1, scalar_desc(BaseType.DOUBLE))
    return desc


def solve_produce(profile, ctx):
    n = profile.parameter(0).get()
    yield from ctx.execute(0.5)
    profile.parameter(1).set(np.arange(n, dtype=float))
    return 0


def solve_consume(profile, ctx):
    v = profile.parameter(0).get()
    yield from ctx.execute(0.5)
    profile.parameter(1).set(float(np.sum(v)))
    return 0


@pytest.fixture
def deployment():
    dep = deploy_paper_hierarchy(build_grid5000(Engine()))
    for sed in dep.seds:
        sed.add_service(produce_desc(), solve_produce)
        sed.add_service(consume_desc(), solve_consume)
    dep.launch_all()
    dep.client.initialize({"MA_name": "MA"})
    return dep


class TestHandleWireFormat:
    def test_handle_travels_as_reference(self):
        handle = DataHandle("id", "sed", nbytes=10 ** 9)
        assert sizeof_value(CompositeType.VECTOR, BaseType.DOUBLE,
                            handle) == HANDLE_WIRE_BYTES

    def test_negative_size_rejected(self):
        from repro.core import DataError
        with pytest.raises(DataError):
            DataHandle("id", "sed", nbytes=-1)


class TestPersistence:
    def _produce(self, dep, n=1000, mode=PersistenceMode.PERSISTENT):
        desc = produce_desc(mode)
        profile = desc.instantiate()
        profile.parameter(0).set(n)
        profile.parameter(1).set(None)
        handle = dep.client.function_handle("produce")

        def run():
            status = yield from dep.client.call(profile, handle)
            return status

        status = dep.engine.run_process(run())
        assert status == 0
        return profile, handle.server

    def test_persistent_out_returns_handle(self, deployment):
        profile, server = self._produce(deployment)
        handle = profile.parameter(1).get()
        assert isinstance(handle, DataHandle)
        assert handle.sed_name == server
        assert handle.nbytes == 1000 * 8

    def test_persistent_return_ships_value_and_keeps_copy(self, deployment):
        profile, server = self._produce(
            deployment, mode=PersistenceMode.PERSISTENT_RETURN)
        value = profile.parameter(1).get()
        assert isinstance(value, np.ndarray)
        sed = deployment.sed_by_name(server)
        assert len(sed.data_store) == 1

    def test_volatile_leaves_no_server_copy(self, deployment):
        profile, server = self._produce(deployment,
                                        mode=PersistenceMode.VOLATILE)
        assert isinstance(profile.parameter(1).get(), np.ndarray)
        sed = deployment.sed_by_name(server)
        assert len(sed.data_store) == 0

    def test_handle_resolves_on_owner_or_peer(self, deployment):
        """Passing the handle to a later call yields the original data even
        when the scheduler routes the job to a different SeD."""
        profile, _ = self._produce(deployment, n=500)
        handle = profile.parameter(1).get()

        totals = []

        def run():
            for _ in range(3):
                p = consume_desc().instantiate()
                p.parameter(0).set(handle)
                p.parameter(1).set(None)
                assert p.request_nbytes() == HANDLE_WIRE_BYTES
                status = yield from deployment.client.call(p)
                assert status == 0
                totals.append(p.parameter(1).get())

        deployment.engine.run_process(run())
        assert totals == [sum(range(500))] * 3

    def test_stale_handle_fails_cleanly(self, deployment):
        bogus = DataHandle("nonexistent", deployment.seds[0].name, 100)
        p = consume_desc().instantiate()
        p.parameter(0).set(bogus)
        p.parameter(1).set(None)

        def run():
            status = yield from deployment.client.call(p)
            return status

        # the data error surfaces as a failed service call (status 1)
        assert deployment.engine.run_process(run()) == 1


class TestCancel:
    def test_cancel_inflight_request(self, deployment):
        client, engine = deployment.client, deployment.engine
        profile = produce_desc().instantiate()
        profile.parameter(0).set(10)
        profile.parameter(1).set(None)

        def run():
            req = client.call_async(profile)
            yield engine.timeout(0.001)   # while still finding/queueing
            cancelled = grpc_cancel(req)
            status = yield from req.wait()
            return cancelled, status

        cancelled, status = engine.run_process(run())
        assert cancelled is True
        assert status == client.STATUS_CANCELLED

    def test_cancel_completed_request_returns_false(self, deployment):
        client, engine = deployment.client, deployment.engine
        profile = produce_desc().instantiate()
        profile.parameter(0).set(10)
        profile.parameter(1).set(None)

        def run():
            req = client.call_async(profile)
            yield from req.wait()
            return grpc_cancel(req)

        assert engine.run_process(run()) is False
