"""Unit tests for estimation vectors and scheduler policies."""

import numpy as np
import pytest

from repro.core import (
    DefaultPolicy,
    EstimationVector,
    FastestNodePolicy,
    MCTPolicy,
    MinQueuePolicy,
    PriorityListPolicy,
    RandomPolicy,
    SchedulingContext,
    make_policy,
)
from repro.core.scheduling import (
    EST_COMMTIME,
    EST_NBJOBS,
    EST_SPEED,
    EST_TCOMP,
)


def vectors(**speeds):
    return [EstimationVector(name, {EST_SPEED: s, EST_NBJOBS: 0.0})
            for name, s in speeds.items()]


class TestEstimationVector:
    def test_get_default_inf(self):
        est = EstimationVector("s")
        assert est.get("MISSING") == float("inf")

    def test_set_get(self):
        est = EstimationVector("s")
        est.set(EST_SPEED, 2.4)
        assert est.get(EST_SPEED) == 2.4

    def test_repr_sorted(self):
        est = EstimationVector("s", {"B": 2.0, "A": 1.0})
        assert repr(est).index("A=1") < repr(est).index("B=2")


class TestContext:
    def test_dispatch_counting(self):
        ctx = SchedulingContext()
        ctx.note_dispatch("a")
        ctx.note_dispatch("a")
        ctx.note_dispatch("b")
        assert ctx.dispatched == {"a": 2, "b": 1}
        assert ctx.rr_counter == 3

    def test_completion_running_mean(self):
        ctx = SchedulingContext()
        ctx.note_completion("a", 10.0, service="svc")
        ctx.note_completion("a", 20.0, service="svc")
        assert ctx.history_mean[("svc", "a")] == pytest.approx(15.0)

    def test_history_is_per_service(self):
        """A fast run of service X must not bias predictions for Y."""
        ctx = SchedulingContext()
        ctx.note_completion("a", 5.0, service="ramsesZoom1")
        ctx.service = "ramsesZoom2"
        assert ctx.service_history("a") is None
        ctx.note_completion("a", 50.0, service="ramsesZoom2")
        assert ctx.service_history("a") == 50.0

    def test_in_flight(self):
        ctx = SchedulingContext()
        ctx.note_dispatch("a")
        ctx.note_dispatch("a")
        ctx.note_completion("a", 1.0)
        assert ctx.in_flight("a") == 1


class TestDefaultPolicy:
    def test_equal_share_over_burst(self):
        """100 sequential choices over 11 SeDs -> the paper's 9/.../10."""
        policy = DefaultPolicy()
        ctx = SchedulingContext()
        cands = vectors(**{f"sed{i}": 2.0 for i in range(11)})
        for _ in range(100):
            chosen = policy.choose(cands, ctx)
            ctx.note_dispatch(chosen.sed_name)
        counts = sorted(ctx.dispatched.values())
        assert counts == [9] * 10 + [10]

    def test_least_dispatched_first(self):
        policy = DefaultPolicy()
        ctx = SchedulingContext()
        cands = vectors(a=1.0, b=1.0)
        ctx.note_dispatch("a")
        assert policy.choose(cands, ctx).sed_name == "b"

    def test_empty_candidates(self):
        assert DefaultPolicy().choose([], SchedulingContext()) is None

    def test_rotation_varies_tie_break(self):
        policy = DefaultPolicy()
        ctx = SchedulingContext()
        cands = vectors(a=1.0, b=1.0, c=1.0)
        picks = []
        for _ in range(3):
            chosen = policy.choose(cands, ctx)
            picks.append(chosen.sed_name)
            ctx.note_dispatch(chosen.sed_name)
        assert sorted(picks) == ["a", "b", "c"]


class TestMCT:
    def test_prefers_faster_sed_with_prediction(self):
        policy = MCTPolicy()
        ctx = SchedulingContext()
        cands = [
            EstimationVector("slow", {EST_TCOMP: 100.0, EST_NBJOBS: 0}),
            EstimationVector("fast", {EST_TCOMP: 50.0, EST_NBJOBS: 0}),
        ]
        assert policy.choose(cands, ctx).sed_name == "fast"

    def test_accounts_for_backlog(self):
        policy = MCTPolicy()
        ctx = SchedulingContext()
        cands = [
            EstimationVector("fast", {EST_TCOMP: 50.0, EST_NBJOBS: 0}),
            EstimationVector("slow", {EST_TCOMP: 80.0, EST_NBJOBS: 0}),
        ]
        ctx.note_dispatch("fast")  # fast now has one in flight
        # fast: (1+1)*50 = 100 > slow: 80
        assert policy.choose(cands, ctx).sed_name == "slow"

    def test_history_overrides_prediction(self):
        policy = MCTPolicy()
        ctx = SchedulingContext()
        ctx.note_completion("a", 10.0)   # measured much faster than predicted
        est = EstimationVector("a", {EST_TCOMP: 1000.0})
        assert policy.per_job_time(est, ctx) == 10.0

    def test_falls_back_to_speed(self):
        policy = MCTPolicy()
        est = EstimationVector("a", {EST_SPEED: 4.0})
        assert policy.per_job_time(est, SchedulingContext()) == pytest.approx(0.25)

    def test_balances_by_speed_over_campaign(self):
        """MCT gives faster SeDs proportionally more jobs."""
        policy = MCTPolicy()
        ctx = SchedulingContext()
        cands = [
            EstimationVector("fast", {EST_TCOMP: 50.0, EST_NBJOBS: 0, EST_COMMTIME: 0}),
            EstimationVector("slow", {EST_TCOMP: 100.0, EST_NBJOBS: 0, EST_COMMTIME: 0}),
        ]
        for _ in range(30):
            chosen = policy.choose(cands, ctx)
            ctx.note_dispatch(chosen.sed_name)
        assert ctx.dispatched["fast"] == pytest.approx(20, abs=1)


class TestOtherPolicies:
    def test_min_queue(self):
        policy = MinQueuePolicy()
        cands = [
            EstimationVector("busy", {EST_NBJOBS: 3}),
            EstimationVector("idle", {EST_NBJOBS: 0}),
        ]
        assert policy.choose(cands, SchedulingContext()).sed_name == "idle"

    def test_fastest_node(self):
        policy = FastestNodePolicy()
        cands = vectors(a=2.0, b=2.6, c=1.8)
        assert policy.choose(cands, SchedulingContext()).sed_name == "b"

    def test_random_is_deterministic_with_seed(self):
        cands = vectors(**{f"s{i}": 1.0 for i in range(10)})
        picks1 = RandomPolicy(np.random.default_rng(5)).sort(
            cands, SchedulingContext())
        picks2 = RandomPolicy(np.random.default_rng(5)).sort(
            cands, SchedulingContext())
        assert [e.sed_name for e in picks1] == [e.sed_name for e in picks2]

    def test_priority_list(self):
        policy = PriorityListPolicy([(EST_NBJOBS, "min"), (EST_SPEED, "max")])
        cands = [
            EstimationVector("a", {EST_NBJOBS: 0, EST_SPEED: 2.0}),
            EstimationVector("b", {EST_NBJOBS: 0, EST_SPEED: 2.6}),
            EstimationVector("c", {EST_NBJOBS: 1, EST_SPEED: 9.9}),
        ]
        ranked = policy.sort(cands, SchedulingContext())
        assert [e.sed_name for e in ranked] == ["b", "a", "c"]

    def test_priority_list_validation(self):
        with pytest.raises(ValueError):
            PriorityListPolicy([])
        with pytest.raises(ValueError):
            PriorityListPolicy([(EST_SPEED, "sideways")])


class TestRegistry:
    def test_make_policy(self):
        assert isinstance(make_policy("default"), DefaultPolicy)
        assert isinstance(make_policy("mct"), MCTPolicy)

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="default"):
            make_policy("quantum")
