"""Unit tests for the multi-MA federation (repro.core.federation)."""

import pytest

from repro.core.agent import ROUTING_MODES, AgentParams
from repro.core.data import BaseType, scalar_desc
from repro.core.exceptions import ServerNotFoundError
from repro.core.federation import (
    ChurnPlan,
    FederatedClient,
    FederationConfig,
    build_federation,
    federation_cluster_specs,
    schedule_churn,
)
from repro.core.profile import ProfileDesc
from repro.platform.grid5000 import PAPER_CLUSTERS
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


def _desc(name="echo"):
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def _solve(profile, ctx):
    yield from ctx.execute(0.5)
    profile.parameter(1).set(0)
    return 0


def _instantiate(desc):
    profile = desc.instantiate()
    profile.parameter(0).set(1)
    profile.parameter(1).set(None)
    return profile


class TestClusterSpecs:
    def test_catalogue_replicated_per_grid(self):
        specs = federation_cluster_specs(3, 2)
        assert len(specs) == 6
        assert [s.site for s in specs] == [
            f"g{g}-{PAPER_CLUSTERS[c].site}"
            for g in range(3) for c in range(2)]
        # Cyclic draw from the paper catalogue keeps cluster shapes.
        assert specs[0].n_seds == PAPER_CLUSTERS[0].n_seds
        assert specs[1].n_seds == PAPER_CLUSTERS[1].n_seds

    def test_wraps_catalogue_when_wider(self):
        wide = federation_cluster_specs(1, len(PAPER_CLUSTERS) + 1)
        assert wide[-1].name == PAPER_CLUSTERS[0].name

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederationConfig(n_grids=0)
        with pytest.raises(ValueError):
            FederationConfig(clusters_per_grid=0)


class TestBuildFederation:
    def test_topology_shape(self):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=2, clusters_per_grid=2))
        assert federation.ma_names == ["MA0", "MA1"]
        per_grid = sum(PAPER_CLUSTERS[c].n_seds for c in range(2))
        assert len(federation.seds) == 2 * per_grid
        assert len(federation.grids[0].local_agents) == 2
        # Names embed the grid so the shared fabric stays collision-free.
        assert all(sed.name.startswith("SeD-g0-")
                   for sed in federation.grids[0].seds)
        assert all(sed.name.startswith("SeD-g1-")
                   for sed in federation.grids[1].seds)
        assert federation.client_host is federation.platform.client_host

    def test_add_service_everywhere(self):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=2, clusters_per_grid=1))
        federation.add_service_everywhere(_desc, _solve)
        assert all(_desc().path in sed.table.paths()
                   for sed in federation.seds)


class TestFederatedClientRedirection:
    @pytest.mark.parametrize("routing", ROUTING_MODES)
    def test_home_rejection_redirects_to_sibling(self, routing):
        """Service deployed only on grid 1: a grid-0-homed client must be
        rejected by MA0 and succeed on MA1 with exactly one redirect."""
        engine = Engine()
        federation = build_federation(
            engine,
            FederationConfig(n_grids=2, clusters_per_grid=1, routing=routing,
                             agent_params=AgentParams(child_timeout=0.5)))
        desc = _desc()
        # SeDs refuse to launch empty: grid 0 serves only a decoy service.
        for sed in federation.grids[0].seds:
            sed.add_service(_desc("decoy"), _solve)
        for sed in federation.grids[1].seds:
            sed.add_service(_desc(), _solve)
        federation.launch_all()

        client = FederatedClient(federation.fabric, federation.client_host,
                                 name="cli", ma_names=federation.ma_names,
                                 home=0)
        state = {}

        def driver():
            status, sed_name, found_at = yield from client.call(
                _instantiate(desc))
            state["status"] = status
            state["sed"] = sed_name
            state["found_at"] = found_at

        engine.run_until_complete(driver())
        assert state["status"] == 0
        assert state["sed"].startswith("SeD-g1-")
        assert client.redirects == 1
        assert client.rejections == 1
        assert state["found_at"] <= engine.now

    def test_every_ma_declining_raises(self):
        engine = Engine()
        federation = build_federation(
            engine,
            FederationConfig(n_grids=2, clusters_per_grid=1,
                             agent_params=AgentParams(child_timeout=0.5)))
        # Every grid serves only the decoy — "echo" exists nowhere.
        federation.add_service_everywhere(lambda: _desc("decoy"), _solve)
        federation.launch_all()
        client = FederatedClient(federation.fabric, federation.client_host,
                                 name="cli", ma_names=federation.ma_names)
        state = {}

        def driver():
            try:
                yield from client.call(_instantiate(_desc()))
            except ServerNotFoundError:
                state["raised"] = True

        engine.run_until_complete(driver())
        assert state.get("raised")
        assert client.rejections == 2
        assert client.redirects == 1   # one sibling retried, then gave up

    def test_max_redirects_zero_pins_client_to_home(self):
        engine = Engine()
        federation = build_federation(
            engine,
            FederationConfig(n_grids=2, clusters_per_grid=1,
                             agent_params=AgentParams(child_timeout=0.5)))
        for sed in federation.grids[0].seds:
            sed.add_service(_desc("decoy"), _solve)
        for sed in federation.grids[1].seds:
            sed.add_service(_desc(), _solve)
        federation.launch_all()
        client = FederatedClient(federation.fabric, federation.client_host,
                                 name="cli", ma_names=federation.ma_names,
                                 home=0, max_redirects=0)
        state = {}

        def driver():
            try:
                yield from client.call(_instantiate(_desc()))
            except ServerNotFoundError:
                state["raised"] = True

        engine.run_until_complete(driver())
        assert state.get("raised")
        assert client.redirects == 0
        assert client.rejections == 1


class TestChurn:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ChurnPlan(n_outages=-1, start=0.0, end=1.0)
        with pytest.raises(ValueError):
            ChurnPlan(n_outages=1, start=2.0, end=1.0)

    def _history(self, seed):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=2, clusters_per_grid=1))
        federation.add_service_everywhere(_desc, _solve)
        federation.launch_all()
        injector = schedule_churn(
            federation, ChurnPlan(n_outages=3, start=5.0, end=20.0),
            RandomStreams(seed))
        assert injector.pending == 3
        engine.run()
        return [(r.name, r.down_at, r.up_at) for r in injector.history]

    def test_churn_is_deterministic_per_seed(self):
        first = self._history(99)
        assert first == self._history(99)
        assert first != self._history(100)
        # Victims drawn without replacement: one outage per SeD at most.
        assert len({v for v, _, _ in first}) == 3

    def test_outages_capped_by_population(self):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=1, clusters_per_grid=1))
        federation.add_service_everywhere(_desc, _solve)
        federation.launch_all()
        injector = schedule_churn(
            federation, ChurnPlan(n_outages=50, start=1.0, end=2.0),
            RandomStreams(1))
        assert injector.pending == len(federation.seds)

    def test_zero_outages_is_a_no_op(self):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=1, clusters_per_grid=1))
        injector = schedule_churn(
            federation, ChurnPlan(n_outages=0, start=0.0, end=1.0),
            RandomStreams(1))
        assert injector.pending == 0


class TestClientPlacement:
    def test_per_grid_placement_is_the_default(self):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=2, clusters_per_grid=1))
        assert federation.grids[0].client_host is not None
        assert federation.client_host_for(0).name == "g0-client"
        assert federation.client_host_for(1).name == "g1-client"
        # The shared core-attached host still exists for legacy callers.
        assert federation.client_host is federation.platform.client_host

    def test_core_placement_restores_the_shared_host(self):
        """The pre-placement wiring: every client on the core service
        node (what E13's pinned numbers were measured under)."""
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=2, clusters_per_grid=1,
                                     client_placement="core"))
        assert all(grid.client_host is None for grid in federation.grids)
        assert federation.client_host_for(0) is federation.platform.client_host
        assert federation.client_host_for(1) is federation.platform.client_host

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            FederationConfig(client_placement="nearest")


class TestLeastRecentRejectionOrder:
    def _client(self, n_grids=3):
        engine = Engine()
        federation = build_federation(
            engine, FederationConfig(n_grids=n_grids, clusters_per_grid=1))
        return FederatedClient(federation.fabric, federation.client_host,
                               name="cli", ma_names=federation.ma_names,
                               home=1)

    def test_order_matches_home_rotation_before_any_rejection(self):
        client = self._client()
        assert client._ma_order() == ["MA1", "MA2", "MA0"]

    def test_rejected_ma_sinks_to_the_back(self):
        client = self._client()
        client._last_rejected["MA1"] = 4.0
        assert client._ma_order() == ["MA2", "MA0", "MA1"]

    def test_least_recent_rejection_ranks_first_among_rejected(self):
        client = self._client()
        client._last_rejected.update({"MA1": 4.0, "MA2": 9.0, "MA0": 1.0})
        assert client._ma_order() == ["MA0", "MA1", "MA2"]

    def test_simultaneous_rejections_fall_back_to_rotation(self):
        client = self._client()
        client._last_rejected.update({"MA0": 2.0, "MA2": 2.0})
        assert client._ma_order() == ["MA1", "MA2", "MA0"]

    def test_note_rejection_feeds_counts_and_stamps(self):
        client = self._client()
        client._note_rejection("MA2")
        client._note_rejection("MA2")
        assert client.rejections == 2
        assert client.rejections_by_ma == {"MA2": 2}
        assert "MA2" in client._last_rejected

    def test_max_redirects_truncates_the_order(self):
        client = self._client()
        client.max_redirects = 1
        assert client._ma_order() == ["MA1", "MA2"]
