"""Push-mode routing: delta propagation, batched admission, invalidation."""

import pytest

from repro.core import (
    BaseType,
    EstimateDelta,
    LocalAgent,
    MasterAgent,
    ProfileDesc,
    SeD,
    ServerNotFoundError,
    SubmitRequest,
    Tracer,
    TransportFabric,
    scalar_desc,
)
from repro.core.agent import AgentParams
from repro.core.requests import new_request_id
from repro.obs import Observability
from repro.sim import Engine, Host, Link, Network


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(0)
    return 0


def build(routing="push", agent_params=None, obs=None):
    """MA -> 2 LAs -> 2 SeDs each, mirroring the pull-mode agent fixture."""
    engine = Engine()
    net = Network(engine)
    hub = net.add_host(Host(engine, "hub"))
    fabric = TransportFabric(engine, net)
    tracer = Tracer(obs)

    ma = MasterAgent(fabric, hub, name="MA", tracer=tracer, routing=routing,
                     params=agent_params)
    las, seds = [], []
    for la_i in range(2):
        la_host = net.add_host(Host(engine, f"la{la_i}-host"))
        net.connect("hub", la_host.name, Link(engine, f"wl{la_i}", 0.005, 1e8))
        la = LocalAgent(fabric, la_host, name=f"LA{la_i}", parent="MA",
                        routing=routing, params=agent_params)
        ma.add_child(la.name)
        la.launch()
        las.append(la)
        for sed_i in range(2):
            sed_host = net.add_host(Host(engine, f"sed{la_i}{sed_i}-host",
                                         speed=1.0 + la_i))
            net.connect(la_host.name, sed_host.name,
                        Link(engine, f"sl{la_i}{sed_i}", 0.0001, 1e9))
            sed = SeD(fabric, sed_host, f"SeD{la_i}{sed_i}", ma_name="MA",
                      tracer=tracer, parent=la.name, routing=routing)
            sed.add_service(toy_desc(), solve_toy)
            sed.launch()
            la.add_child(sed.name)
            seds.append(sed)
    ma.launch()
    cli = fabric.endpoint("cli", "hub")
    cli.start()
    return engine, fabric, ma, las, seds, cli


def submit(cli, service=None):
    sub = SubmitRequest(new_request_id(), service or toy_desc(), "hub", "cli")
    sed_name, est = yield from cli.rpc("MA", "submit", sub)
    return sed_name


class TestRoutingSwitch:
    def test_invalid_mode_rejected(self):
        engine = Engine()
        net = Network(engine)
        hub = net.add_host(Host(engine, "hub"))
        fabric = TransportFabric(engine, net)
        with pytest.raises(ValueError):
            MasterAgent(fabric, hub, name="MA", routing="gossip")
        with pytest.raises(ValueError):
            SeD(fabric, hub, "S", ma_name="MA", routing="gossip")

    def test_pull_mode_has_no_table(self):
        engine = Engine()
        net = Network(engine)
        hub = net.add_host(Host(engine, "hub"))
        fabric = TransportFabric(engine, net)
        ma = MasterAgent(fabric, hub, name="MA")
        assert ma.routing == "pull"
        assert ma.table is None


class TestTableMaterialization:
    def test_launch_pushes_populate_ma_table(self):
        engine, _, ma, las, seds, _ = build()
        engine.run()
        rows = ma.table.candidates("toy")
        assert sorted(r.sed_name for r in rows) == sorted(
            s.name for s in seds)
        # provenance at the MA is the LA that forwarded, not the SeD
        assert {r.via for r in rows} == {"LA0", "LA1"}
        for la in las:
            assert len(la.table.candidates("toy")) == 2

    def test_la_forwarding_coalesces_burst(self):
        engine, _, ma, _, _, _ = build()
        engine.run()
        # 2 SeDs per LA pushed within one processing window -> one delta
        # per LA reaches the MA (2 total), not one per SeD (4).
        assert ma.table.deltas_applied == 2

    def test_top_k_bounds_upward_exposure(self):
        engine, _, ma, las, _, _ = build(
            agent_params=AgentParams(aggregate_top_k=1))
        engine.run()
        # each LA knows both of its SeDs but forwards only its best
        for la in las:
            assert len(la.table.table("toy").rows) == 2
        assert len(ma.table.table("toy").rows) == 2

    def test_queue_change_triggers_repush(self):
        engine, _, ma, _, seds, cli = build()
        engine.run()
        before = {r.sed_name: r.seq for r in ma.table.candidates("toy")}

        def call():
            sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
            sed_name, est = yield from cli.rpc("MA", "submit", sub)
            # drive the solve so the SeD's queue changes
            from repro.core.requests import SolveRequest
            profile = toy_desc().instantiate()
            profile.parameter(0).set(1)
            profile.parameter(1).set(None)
            yield from cli.rpc(sed_name, "solve",
                               SolveRequest(sub.request_id, profile, "cli"))
            return sed_name

        sed_name = engine.run_process(call())
        engine.run()  # let the post-solve push propagate
        after = {r.sed_name: r.seq for r in ma.table.candidates("toy")}
        assert after[sed_name] > before[sed_name]


class TestPushAdmission:
    def test_submits_answered_from_table(self):
        engine, _, ma, _, seds, cli = build()
        chosen = []

        def call():
            for _ in range(4):
                chosen.append((yield from submit(cli)))

        engine.run_process(call())
        # default policy spreads across every SeD in the table
        assert sorted(chosen) == sorted(s.name for s in seds)
        assert sum(ma.ctx.dispatched.values()) == 4

    def test_cold_start_submit_waits_for_first_push(self):
        # Submit immediately at t=0: the table is empty until the launch
        # pushes land, so admission must park-then-admit, not reject.
        engine, _, ma, _, seds, cli = build()
        sed_name = engine.run_process(submit(cli))
        assert sed_name in {s.name for s in seds}
        assert ma.rejections == 0

    def test_unknown_service_rejects_after_grace(self):
        engine, _, ma, _, _, cli = build(
            agent_params=AgentParams(child_timeout=0.5))
        engine.run()
        t0 = engine.now

        def call():
            try:
                yield from submit(cli, ProfileDesc("nonexistent", 0, 0, 0))
            except ServerNotFoundError:
                return "not-found"

        assert engine.run_process(call()) == "not-found"
        assert ma.rejections == 1
        assert engine.now - t0 >= 0.5

    def test_burst_coalesces_into_one_batch(self):
        engine, _, ma, _, _, cli = build()
        engine.run()
        results = []

        def one():
            results.append((yield from submit(cli)))

        def burst():
            procs = [engine.process(one()) for _ in range(6)]
            yield engine.all_of(procs)

        engine.run_process(burst())
        assert len(results) == 6
        # a simultaneous burst pays one processing charge, so every reply
        # lands at the same instant
        assert ma.request_count == 6

    def test_batch_max_bounds_one_wakeup(self):
        engine, _, ma, _, _, cli = build(
            agent_params=AgentParams(admission_batch_max=2))
        engine.run()
        results = []

        def one():
            results.append((yield from submit(cli)))

        def burst():
            procs = [engine.process(one()) for _ in range(5)]
            yield engine.all_of(procs)

        engine.run_process(burst())
        assert len(results) == 5


class TestInvalidation:
    def test_remove_child_drops_subtree_rows(self):
        engine, _, ma, _, seds, cli = build()
        engine.run()
        assert ma.remove_child("LA0")
        survivors = {r.sed_name for r in ma.table.candidates("toy")}
        assert survivors == {"SeD10", "SeD11"}

        def call():
            out = []
            for _ in range(2):
                out.append((yield from submit(cli)))
            return out

        assert set(engine.run_process(call())) <= survivors

    def test_la_remove_child_cascades_removal_to_ma(self):
        engine, _, ma, las, _, _ = build()
        engine.run()
        las[0].remove_child("SeD00")
        engine.run()  # forward pump ships the removal upward
        assert "SeD00" not in {r.sed_name
                               for r in ma.table.candidates("toy")}

    def test_late_delta_from_deregistered_child_ignored(self):
        engine, _, ma, _, _, _ = build()
        engine.run()
        ma.remove_child("LA0")
        n_before = len(ma.table.candidates("toy"))
        # a straggler delta arrives after deregistration
        from repro.core.scheduling import EstimationVector
        ghost = EstimateDelta("LA0", [("toy", EstimationVector("SeD00"),
                                       "sed00-host", 99)])
        # handlers are generators; drive it to completion directly
        list(ma._handle_est_delta(type("M", (), {"payload": ghost})))
        assert len(ma.table.candidates("toy")) == n_before

    def test_sed_crash_restart_repush(self):
        engine, _, ma, las, seds, cli = build()
        engine.run()
        victim = seds[0]
        seq_before = {r.sed_name: r.seq for r in ma.table.candidates("toy")}
        victim.crash()
        las[0].remove_child(victim.name)  # what liveness would do
        engine.run()
        assert victim.name not in {r.sed_name
                                   for r in ma.table.candidates("toy")}
        victim.restart()
        engine.run()  # register + re-announce push propagates
        rows = {r.sed_name: r.seq for r in ma.table.candidates("toy")}
        assert victim.name in rows
        # the restart push outranks every pre-crash seq (monotone counter)
        assert rows[victim.name] > seq_before[victim.name]


class TestDeregRacingInFlightRequest:
    """Heartbeat-style deregistration racing an in-flight request must
    neither lose survivors nor double-count the dead subtree — in pull
    mode the estimate fan-out prunes it, in push mode the table does."""

    @pytest.mark.parametrize("routing,delay", [
        ("pull", 0.001),   # removal lands before the MA's fan-out snapshot
        ("pull", 0.010),   # removal lands mid-gather, estimates in flight
        ("push", 0.001),   # removal invalidates the table pre-admission
    ])
    def test_remove_child_mid_request(self, routing, delay):
        engine, _, ma, las, seds, cli = build(routing=routing)
        engine.run()
        result = {}

        def call():
            result["sed"] = yield from submit(cli)

        def saboteur():
            yield engine.timeout(delay)
            # LA0's whole subtree dies and liveness deregisters it at
            # every level, exactly as the heartbeat monitor would.
            seds[0].crash()
            seds[1].crash()
            las[0].remove_child(seds[0].name)
            las[0].remove_child(seds[1].name)
            ma.remove_child("LA0")

        engine.process(call(), name="call")
        engine.process(saboteur(), name="saboteur")
        engine.run()
        assert result["sed"] in {seds[2].name, seds[3].name}
        sched = [e for e in ma.tracer.events if e[1] == "schedule"][-1]
        # exactly the two survivors — the dead subtree neither lingers
        # nor gets counted twice through the removal cascade
        assert sched[2]["n_candidates"] == 2


class TestParkWatchdogHeapFootprint:
    def test_no_residual_timer_per_admitted_submit(self):
        # 64 cold-start submits all park before the launch pushes land and
        # are then rescued and admitted.  The park machinery must not leave
        # one dead child_timeout timer per admitted request on the event
        # heap — the old per-item watchdogs slept the full grace period
        # regardless, an O(in-flight) heap leak at load.
        engine, _, ma, _, _, cli = build(
            agent_params=AgentParams(child_timeout=10.0))
        results = []

        def one():
            results.append((yield from submit(cli)))

        def burst():
            procs = [engine.process(one()) for _ in range(64)]
            yield engine.all_of(procs)

        # stop at burst completion — running the queue dry would let even
        # leaked watchdog timers fire and hide the footprint
        engine.run_until_complete(burst())
        assert len(results) == 64
        assert ma.rejections == 0
        # one sweeper timer plus a handful of transport residues — the old
        # code left >= 64 dead watchdog timers here
        assert len(engine._queue) <= 8


class TestParkedRescueFilter:
    def test_pure_removal_does_not_requeue_parked(self):
        engine, _, ma, _, _, cli = build(
            agent_params=AgentParams(child_timeout=60.0))
        engine.run()
        state = {}

        def call():
            try:
                yield from submit(cli, ProfileDesc("ghost", 0, 0, 0))
            except ServerNotFoundError:
                state["outcome"] = "rejected"

        def driver():
            yield engine.timeout(1.0)
            state["parked_before"] = len(ma._parked)
            # churn cascade: rows only disappear, nothing gained
            ma.remove_child("LA0")
            state["parked_now"] = len(ma._parked)

        engine.process(call(), name="call")
        engine.run_until_complete(driver())
        assert state["parked_before"] == 1
        # the old code drained _parked into the admission store on *any*
        # table change, burning an admission batch to re-park it
        assert state["parked_now"] == 1
        assert "outcome" not in state  # still parked, not rejected

    def test_gaining_update_rescues_matching_service_only(self):
        engine, _, ma, _, _, cli = build(
            agent_params=AgentParams(child_timeout=60.0))
        engine.run()
        res = {}

        def call(tag, name):
            try:
                res[tag] = yield from submit(cli, ProfileDesc(name, 0, 0, 0))
            except ServerNotFoundError:
                res[tag] = "rejected"

        state = {}

        def driver():
            yield engine.timeout(1.0)
            state["parked_before"] = len(ma._parked)
            # a SeD of the "ghost" service appears behind LA1
            from repro.core.scheduling import EstimationVector
            delta = EstimateDelta(
                "LA1", [("ghost", EstimationVector("SeD10"),
                         "sed10-host", 999)])
            list(ma._handle_est_delta(type("M", (), {"payload": delta})))
            state["parked_now"] = len(ma._parked)
            yield engine.timeout(1.0)  # admission batch runs

        engine.process(call("ghost", "ghost"), name="g")
        engine.process(call("phantom", "phantom"), name="p")
        engine.run_until_complete(driver())
        assert state["parked_before"] == 2
        assert state["parked_now"] == 1          # phantom stays parked
        assert res.get("ghost") == "SeD10"       # ghost was admitted
        assert "phantom" not in res              # neither admitted nor rejected


class TestCrashDuringPushPump:
    @pytest.mark.parametrize("routing", ["pull", "push"])
    def test_crash_mid_pump_restart_reannounces(self, routing):
        engine, _, ma, las, seds, cli = build(routing=routing)
        engine.run()
        victim = seds[0]
        collect = victim.params.estimate_collect_time

        def scenario():
            victim._schedule_push()      # arm a pump; guard no-op in pull
            yield engine.timeout(collect / 2)
            victim.crash()               # mid-probe: the pump is sleeping
            las[0].remove_child(victim.name)
            yield engine.timeout(collect / 4)
            victim.restart()             # before the stale pump wakes

        engine.run_process(scenario())
        engine.run()  # stale pump exits silently; re-announce propagates
        if routing == "push":
            # restart cleared the stale dirty flag, so the re-announce push
            # was not suppressed: the SeD is visible again at the MA
            rows = {r.sed_name for r in ma.table.candidates("toy")}
            assert victim.name in rows
            assert not victim._push_dirty
        chosen = set()

        def calls():
            for _ in range(8):
                chosen.add((yield from submit(cli)))

        engine.run_process(calls())
        assert victim.name in chosen


class TestRejectionObservability:
    @pytest.mark.parametrize("routing", ["pull", "push"])
    def test_rejection_counter_and_event(self, routing):
        obs = Observability()
        params = AgentParams(child_timeout=0.5)
        engine, _, ma, _, _, cli = build(routing=routing, agent_params=params,
                                         obs=obs)
        engine.run()

        def call():
            try:
                yield from submit(cli, ProfileDesc("nonexistent", 0, 0, 0))
            except ServerNotFoundError:
                return "not-found"

        assert engine.run_process(call()) == "not-found"
        assert ma.rejections == 1
        assert obs.metrics.counter("scheduler.rejections").value == 1
        rejects = [e for e in ma.tracer.events if e[1] == "schedule-reject"]
        assert len(rejects) == 1
