"""Unit tests for Local Agents and the Master Agent."""

import pytest

from repro.core import (
    BaseType,
    LocalAgent,
    MasterAgent,
    ProfileDesc,
    SeD,
    ServerNotFoundError,
    SubmitRequest,
    Tracer,
    TransportFabric,
    scalar_desc,
)
from repro.core.requests import new_request_id
from repro.sim import Engine, Host, Link, Network


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(0)
    return 0


@pytest.fixture
def hierarchy():
    """MA -> 2 LAs -> 2 SeDs each."""
    engine = Engine()
    net = Network(engine)
    hub = net.add_host(Host(engine, "hub"))
    fabric = TransportFabric(engine, net)
    tracer = Tracer()

    ma = MasterAgent(fabric, hub, name="MA", tracer=tracer)
    seds = []
    for la_i in range(2):
        la_host = net.add_host(Host(engine, f"la{la_i}-host"))
        net.connect("hub", la_host.name, Link(engine, f"wl{la_i}", 0.005, 1e8))
        la = LocalAgent(fabric, la_host, name=f"LA{la_i}", parent="MA")
        ma.add_child(la.name)
        la.launch()
        for sed_i in range(2):
            sed_host = net.add_host(Host(engine, f"sed{la_i}{sed_i}-host",
                                         speed=1.0 + la_i))
            net.connect(la_host.name, sed_host.name,
                        Link(engine, f"sl{la_i}{sed_i}", 0.0001, 1e9))
            sed = SeD(fabric, sed_host, f"SeD{la_i}{sed_i}", ma_name="MA",
                      tracer=tracer)
            sed.add_service(toy_desc(), solve_toy)
            sed.launch()
            la.add_child(sed.name)
            seds.append(sed)
    ma.launch()

    cli = fabric.endpoint("cli", "hub")
    cli.start()
    return engine, fabric, ma, seds, cli


class TestSubmit:
    def test_submit_returns_a_sed(self, hierarchy):
        engine, _, ma, seds, cli = hierarchy

        def call():
            sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
            sed_name, est = yield from cli.rpc("MA", "submit", sub)
            return sed_name, est

        sed_name, est = engine.run_process(call())
        assert sed_name in {s.name for s in seds}
        assert est.sed_name == sed_name

    def test_all_four_seds_are_candidates(self, hierarchy):
        engine, _, ma, seds, cli = hierarchy
        chosen = []

        def call():
            for _ in range(4):
                sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
                sed_name, _ = yield from cli.rpc("MA", "submit", sub)
                chosen.append(sed_name)

        engine.run_process(call())
        assert sorted(chosen) == sorted(s.name for s in seds)

    def test_unknown_service_raises_server_not_found(self, hierarchy):
        engine, _, _, _, cli = hierarchy

        def call():
            sub = SubmitRequest(new_request_id(),
                                ProfileDesc("nonexistent", 0, 0, 0),
                                "hub", "cli")
            try:
                yield from cli.rpc("MA", "submit", sub)
            except ServerNotFoundError:
                return "not-found"

        assert engine.run_process(call()) == "not-found"

    def test_dispatch_counted_in_context(self, hierarchy):
        engine, _, ma, _, cli = hierarchy

        def call():
            for _ in range(3):
                sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
                yield from cli.rpc("MA", "submit", sub)

        engine.run_process(call())
        assert sum(ma.ctx.dispatched.values()) == 3

    def test_request_count_increments(self, hierarchy):
        engine, _, ma, _, cli = hierarchy

        def call():
            sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
            yield from cli.rpc("MA", "submit", sub)

        engine.run_process(call())
        assert ma.request_count == 1


class TestFaultTolerance:
    def test_dead_sed_pruned_from_candidates(self, hierarchy):
        """A SeD that stopped serving must not break scheduling."""
        engine, fabric, ma, seds, cli = hierarchy
        # silence one SeD's endpoint entirely
        fabric.unbind(seds[0].name)

        def call():
            sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
            sed_name, _ = yield from cli.rpc("MA", "submit", sub)
            return sed_name

        chosen = engine.run_process(call())
        assert chosen != seds[0].name

    def test_whole_la_subtree_pruned(self, hierarchy):
        engine, fabric, ma, seds, cli = hierarchy
        fabric.unbind("LA0")

        def call():
            sub = SubmitRequest(new_request_id(), toy_desc(), "hub", "cli")
            sed_name, _ = yield from cli.rpc("MA", "submit", sub)
            return sed_name

        chosen = engine.run_process(call())
        assert chosen.startswith("SeD1")

    def test_job_done_feedback_updates_history(self, hierarchy):
        engine, _, ma, seds, cli = hierarchy

        def call():
            yield from cli.send("MA", "job_done",
                                payload={"sed": "SeD00", "duration": 42.0,
                                         "service": "toy"})

        engine.run_process(call())
        engine.run()
        assert ma.ctx.history_mean[("toy", "SeD00")] == 42.0


class TestChildManagement:
    def test_duplicate_child_rejected(self, hierarchy):
        _, _, ma, _, _ = hierarchy
        with pytest.raises(ValueError):
            ma.add_child("LA0")
