"""Unit tests for the LogService monitoring component."""

import statistics

import pytest

from repro.core import (
    BaseType,
    LogCentral,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.platform import build_grid5000
from repro.sim import Engine


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(0)
    return 0


def run_requests(deployment, n):
    client = deployment.client

    def session():
        client.initialize({"MA_name": "MA"})
        for i in range(n):
            p = toy_desc().instantiate()
            p.parameter(0).set(i)
            p.parameter(1).set(None)
            client.call_async(p)
        yield from client.wait_all()

    deployment.engine.run_process(session())
    deployment.engine.run()   # drain the fire-and-forget log posts


@pytest.fixture
def monitored():
    dep = deploy_paper_hierarchy(build_grid5000(Engine()),
                                 with_log_central=True)
    for sed in dep.seds:
        sed.add_service(toy_desc(), solve_toy)
    dep.launch_all()
    return dep


class TestJournal:
    def test_events_collected(self, monitored):
        run_requests(monitored, 6)
        counts = monitored.log_central.counts_by_kind()
        assert counts["schedule"] == 6
        assert counts["solve_start"] == 6
        assert counts["solve_end"] == 6

    def test_components_identified(self, monitored):
        run_requests(monitored, 11)
        components = monitored.log_central.components_seen()
        assert "MA" in components
        assert sum(1 for c in components if c.startswith("SeD-")) == 11

    def test_events_carry_payload(self, monitored):
        run_requests(monitored, 3)
        ends = monitored.log_central.events(kind="solve_end")
        assert all(e.info["status"] == 0 for e in ends)
        assert all(e.info["duration"] > 0 for e in ends)
        assert all(e.info["service"] == "toy" for e in ends)

    def test_transit_is_network_realistic(self, monitored):
        run_requests(monitored, 4)
        # events cross the simulated WAN: transit in the ms range, not zero
        transit = monitored.log_central.mean_transit()
        assert 1e-4 < transit < 1.0

    def test_filter_queries(self, monitored):
        run_requests(monitored, 5)
        lc = monitored.log_central
        only_ma = lc.events(component="MA")
        assert all(e.component == "MA" for e in only_ma)
        assert lc.events(kind="schedule", component="MA")

    def test_empty_journal_mean_raises(self):
        dep = deploy_paper_hierarchy(build_grid5000(Engine()),
                                     with_log_central=True)
        with pytest.raises(ValueError):
            dep.log_central.mean_transit()


class TestNonIntrusiveness:
    def test_finding_time_unchanged_by_monitoring(self):
        """Fire-and-forget posts must not perturb the calibrated 49.8 ms."""
        def finding_mean(with_logs):
            dep = deploy_paper_hierarchy(build_grid5000(Engine()),
                                         with_log_central=with_logs)
            for sed in dep.seds:
                sed.add_service(toy_desc(), solve_toy)
            dep.launch_all()
            run_requests(dep, 10)
            return statistics.mean(dep.tracer.finding_times("toy"))

        assert finding_mean(True) == pytest.approx(finding_mean(False),
                                                   rel=1e-9)

    def test_dead_collector_harmless(self, monitored):
        """Killing LogCentral mid-run must not break the application."""
        monitored.fabric.unbind(monitored.log_central.name)
        run_requests(monitored, 4)   # would raise if posts propagated errors
        assert len(monitored.tracer.all_traces("toy")) == 4
