"""Unit tests for the Server Daemon."""

import pytest

from repro.core import (
    BaseType,
    DietError,
    EstimateRequest,
    ProfileDesc,
    SeD,
    SeDParams,
    SolveRequest,
    Tracer,
    TransportFabric,
    scalar_desc,
)
from repro.core.requests import new_request_id
from repro.sim import Engine, Host, Link, Network


@pytest.fixture
def stack():
    engine = Engine()
    net = Network(engine)
    net.add_host(Host(engine, "client-host"))
    net.add_host(Host(engine, "sed-host", speed=2.0))
    net.connect("client-host", "sed-host", Link(engine, "l", 0.001, 1e9))
    fabric = TransportFabric(engine, net)
    return engine, net, fabric


def toy_desc():
    desc = ProfileDesc("square", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_square(profile, ctx):
    x = profile.parameter(0).get()
    yield from ctx.execute(4.0)   # 2s on the 2.0-speed host
    profile.parameter(1).set(x * x)
    return 0


def make_sed(stack, **params):
    engine, net, fabric = stack
    sed = SeD(fabric, net.host("sed-host"), "sed1", tracer=Tracer(),
              params=SeDParams(**params) if params else None)
    sed.add_service(toy_desc(), solve_square)
    sed.launch()
    return sed


def client_endpoint(stack):
    _, _, fabric = stack
    ep = fabric.endpoint("cli", "client-host")
    ep.start()
    return ep


class TestLaunch:
    def test_empty_table_refuses_launch(self, stack):
        engine, net, fabric = stack
        sed = SeD(fabric, net.host("sed-host"), "empty-sed")
        with pytest.raises(DietError):
            sed.launch()


class TestEstimate:
    def test_estimate_returns_vector(self, stack):
        engine, _, fabric = stack
        sed = make_sed(stack)
        cli = client_endpoint(stack)

        def call():
            req = EstimateRequest(new_request_id(), toy_desc(),
                                  "client-host", 100)
            result = yield from cli.rpc("sed1", "estimate", req)
            return result

        vectors = engine.run_process(call())
        assert len(vectors) == 1
        est = vectors[0]
        assert est.sed_name == "sed1"
        assert est.get("EST_SPEED") == 2.0
        assert est.get("EST_NBJOBS") == 0.0
        assert est.get("EST_COMMTIME") < 1.0

    def test_unsolvable_service_returns_empty(self, stack):
        engine, _, fabric = stack
        make_sed(stack)
        cli = client_endpoint(stack)

        def call():
            other = ProfileDesc("unknown-service", 0, 0, 0)
            req = EstimateRequest(new_request_id(), other, "client-host", 0)
            result = yield from cli.rpc("sed1", "estimate", req)
            return result

        assert engine.run_process(call()) == []

    def test_predictor_fills_tcomp(self, stack):
        engine, net, fabric = stack
        sed = SeD(fabric, net.host("sed-host"), "sed-pred")
        sed.add_service(toy_desc(), solve_square,
                        predictor=lambda desc: 123.0)
        sed.launch()
        cli = client_endpoint(stack)

        def call():
            req = EstimateRequest(new_request_id(), toy_desc(),
                                  "client-host", 0)
            result = yield from cli.rpc("sed-pred", "estimate", req)
            return result[0]

        assert engine.run_process(call()).get("EST_TCOMP") == 123.0


class TestSolve:
    def _solve_once(self, stack, sed, cli, value=6):
        engine = stack[0]
        profile = toy_desc().instantiate()
        profile.parameter(0).set(value)
        profile.parameter(1).set(None)

        def call():
            req = SolveRequest(new_request_id(), profile, "cli")
            reply = yield from cli.rpc(sed.name, "solve", req,
                                       nbytes=profile.request_nbytes())
            return reply

        return engine.run_process(call())

    def test_solve_roundtrip(self, stack):
        sed = make_sed(stack)
        cli = client_endpoint(stack)
        reply = self._solve_once(stack, sed, cli, value=6)
        assert reply.status == 0
        assert reply.out_values[1] == 36
        assert reply.sed_name == "sed1"
        assert reply.solve_ended_at - reply.solve_started_at == pytest.approx(2.0)

    def test_solve_counts_and_history(self, stack):
        sed = make_sed(stack)
        cli = client_endpoint(stack)
        self._solve_once(stack, sed, cli)
        self._solve_once(stack, sed, cli)
        assert sed.solve_count == 2
        assert len(sed.solve_durations) == 2

    def test_service_init_time_charged(self, stack):
        sed = make_sed(stack, service_init_time=0.5)
        cli = client_endpoint(stack)
        reply = self._solve_once(stack, sed, cli)
        # solve_started is after data arrival + init; duration excludes init
        assert reply.solve_ended_at - reply.solve_started_at == pytest.approx(2.0)

    def test_application_error_becomes_status(self, stack):
        engine, net, fabric = stack

        def failing(profile, ctx):
            yield from ctx.execute(1.0)
            raise RuntimeError("simulation diverged")

        desc = ProfileDesc("crashy", 0, 0, 1)
        sed = SeD(fabric, net.host("sed-host"), "sed-crash")
        sed.add_service(desc, failing)
        sed.launch()
        cli = client_endpoint(stack)

        profile = desc.instantiate()
        profile.parameter(0).set(1)
        profile.parameter(1).set(None)

        def call():
            req = SolveRequest(new_request_id(), profile, "cli")
            return (yield from cli.rpc("sed-crash", "solve", req))

        reply = engine.run_process(call())
        assert reply.status == 1
        assert "simulation diverged" in reply.error

    def test_one_job_at_a_time(self, stack):
        """§5.1: each server computes at most one simulation at a time."""
        engine, _, _ = stack
        sed = make_sed(stack)
        cli = client_endpoint(stack)
        replies = []

        def call(v):
            profile = toy_desc().instantiate()
            profile.parameter(0).set(v)
            profile.parameter(1).set(None)
            req = SolveRequest(new_request_id(), profile, "cli")
            reply = yield from cli.rpc("sed1", "solve", req)
            replies.append(reply)

        engine.process(call(1))
        engine.process(call(2))
        engine.run()
        spans = sorted((r.solve_started_at, r.solve_ended_at) for r in replies)
        assert spans[1][0] >= spans[0][1]   # no overlap

    def test_n_jobs_probe(self, stack):
        engine, _, _ = stack
        sed = make_sed(stack)
        cli = client_endpoint(stack)
        samples = []

        def call(v):
            profile = toy_desc().instantiate()
            profile.parameter(0).set(v)
            profile.parameter(1).set(None)
            req = SolveRequest(new_request_id(), profile, "cli")
            yield from cli.rpc("sed1", "solve", req)

        def probe():
            yield engine.timeout(1.0)   # while job 1 runs and job 2 queues
            samples.append(sed.n_jobs)

        engine.process(call(1))
        engine.process(call(2))
        engine.process(probe())
        engine.run()
        assert samples == [2]
