"""Unit tests for the LogService-like tracer."""

import pytest

from repro.core import RequestTrace, Tracer


def trace(rid, sed, submit, found, data, start, end, done, service="svc"):
    t = RequestTrace(request_id=rid, service=service, submitted_at=submit,
                     found_at=found, sed_name=sed, data_sent_at=data,
                     solve_started_at=start, solve_ended_at=end,
                     completed_at=done, status=0)
    return t


class TestRequestTrace:
    def test_derived_metrics(self):
        t = trace(1, "sed", 0.0, 0.05, 0.05, 1.0, 11.0, 11.2)
        assert t.finding_time == pytest.approx(0.05)
        assert t.latency == pytest.approx(0.95)
        assert t.solve_duration == pytest.approx(10.0)
        assert t.total_time == pytest.approx(11.2)

    def test_partial_trace_yields_none(self):
        t = RequestTrace(request_id=1, service="svc", submitted_at=0.0)
        assert t.finding_time is None
        assert t.latency is None
        assert t.solve_duration is None


class TestTracer:
    def test_trace_is_idempotent_per_id(self):
        tracer = Tracer()
        a = tracer.trace(1, "svc")
        b = tracer.trace(1)
        assert a is b and b.service == "svc"

    def test_series_ordered_by_submission(self):
        tracer = Tracer()
        for rid, sub in [(1, 5.0), (2, 1.0), (3, 3.0)]:
            rec = tracer.trace(rid, "svc")
            rec.submitted_at = sub
            rec.found_at = sub + 0.1
        assert [t.request_id for t in tracer.all_traces()] == [2, 3, 1]

    def test_service_filter(self):
        tracer = Tracer()
        tracer.trace(1, "a").submitted_at = 0.0
        tracer.trace(2, "b").submitted_at = 0.0
        assert len(tracer.all_traces("a")) == 1

    def test_gantt_and_busy_time(self):
        tracer = Tracer()
        for rid, sed, (s, e) in [(1, "x", (0, 10)), (2, "x", (10, 15)),
                                 (3, "y", (0, 7))]:
            rec = tracer.trace(rid, "svc")
            rec.sed_name = sed
            rec.submitted_at = 0.0
            rec.solve_started_at = float(s)
            rec.solve_ended_at = float(e)
        gantt = tracer.gantt()
        assert [span[:2] for span in gantt["x"]] == [(0.0, 10.0), (10.0, 15.0)]
        busy = tracer.busy_time_per_sed()
        assert busy == {"x": 15.0, "y": 7.0}

    def test_requests_per_sed(self):
        tracer = Tracer()
        for rid, sed in [(1, "x"), (2, "x"), (3, "y")]:
            rec = tracer.trace(rid, "svc")
            rec.submitted_at = 0.0
            rec.sed_name = sed
        assert tracer.requests_per_sed() == {"x": 2, "y": 1}

    def test_makespan(self):
        tracer = Tracer()
        for rid, (sub, done) in [(1, (0.0, 10.0)), (2, (1.0, 25.0))]:
            rec = tracer.trace(rid, "svc")
            rec.submitted_at = sub
            rec.completed_at = done
        assert tracer.makespan() == 25.0

    def test_makespan_empty(self):
        assert Tracer().makespan() is None

    def test_event_log(self):
        tracer = Tracer()
        tracer.log(1.5, "scheduled", sed="x")
        assert tracer.events == [(1.5, "scheduled", {"sed": "x"})]
