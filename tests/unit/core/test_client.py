"""Unit tests for the DIET client (sessions, sync/async calls)."""

import pytest

from repro.core import (
    BaseType,
    DietClient,
    NotCompletedError,
    NotInitializedError,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.core.exceptions import InvalidSessionError
from repro.platform import build_grid5000
from repro.sim import Engine


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    x = profile.parameter(0).get()
    yield from ctx.execute(1.0 * ctx.host.speed)
    profile.parameter(1).set(x + 1)
    return 0


@pytest.fixture
def deployment():
    engine = Engine()
    platform = build_grid5000(engine)
    dep = deploy_paper_hierarchy(platform)
    for sed in dep.seds:
        sed.add_service(toy_desc(), solve_toy)
    dep.launch_all()
    return dep


def fresh_profile(value):
    profile = toy_desc().instantiate()
    profile.parameter(0).set(value)
    profile.parameter(1).set(None)
    return profile


class TestSession:
    def test_call_before_initialize_raises(self, deployment):
        client = deployment.client

        def run():
            yield from client.call(fresh_profile(1))

        with pytest.raises(NotInitializedError):
            deployment.engine.run_process(run())

    def test_initialize_requires_ma_name(self, deployment):
        with pytest.raises(NotInitializedError):
            deployment.client.initialize({})

    def test_initialize_validates_ma_exists(self, deployment):
        with pytest.raises(Exception):
            deployment.client.initialize({"MA_name": "no-such-agent"})

    def test_finalize_closes_session(self, deployment):
        client = deployment.client
        client.initialize({"MA_name": "MA"})
        client.finalize()
        with pytest.raises(NotInitializedError):
            client.function_handle("toy")

    def test_out_data_survives_finalize(self, deployment):
        """§4.3.1: finalize does not free OUT data brought back."""
        client = deployment.client
        engine = deployment.engine
        profile = fresh_profile(10)

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call(profile)
            client.finalize()

        engine.run_process(run())
        assert profile.parameter(1).get() == 11


class TestSyncCall:
    def test_call_fills_out_args(self, deployment):
        client, engine = deployment.client, deployment.engine

        def run():
            client.initialize({"MA_name": "MA"})
            status = yield from client.call(fresh_profile(5))
            return status

        assert engine.run_process(run()) == 0

    def test_handle_bound_to_server(self, deployment):
        client, engine = deployment.client, deployment.engine

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("toy")
            yield from client.call(fresh_profile(1), handle)
            return handle.server

        server = engine.run_process(run())
        assert server in {s.name for s in deployment.seds}

    def test_unset_in_arg_rejected_before_submit(self, deployment):
        client, engine = deployment.client, deployment.engine
        profile = toy_desc().instantiate()   # nothing set
        from repro.core import ProfileError

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call(profile)

        with pytest.raises(ProfileError):
            engine.run_process(run())

    def test_trace_lifecycle_recorded(self, deployment):
        client, engine = deployment.client, deployment.engine

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call(fresh_profile(1))

        engine.run_process(run())
        (trace,) = deployment.tracer.all_traces("toy")
        assert trace.submitted_at == 0.0
        assert trace.finding_time > 0
        assert trace.latency > 0
        assert trace.solve_duration > 0
        assert trace.completed_at > trace.solve_ended_at


class TestAsyncCalls:
    def test_wait_all_collects_statuses(self, deployment):
        client, engine = deployment.client, deployment.engine
        profiles = [fresh_profile(i) for i in range(5)]

        def run():
            client.initialize({"MA_name": "MA"})
            for p in profiles:
                client.call_async(p)
            statuses = yield from client.wait_all()
            return statuses

        statuses = engine.run_process(run())
        assert list(statuses.values()) == [0] * 5
        assert all(p.parameter(1).get() == i + 1
                   for i, p in enumerate(profiles))

    def test_probe_not_completed(self, deployment):
        client, engine = deployment.client, deployment.engine

        def run():
            client.initialize({"MA_name": "MA"})
            req = client.call_async(fresh_profile(1))
            try:
                client.probe(req.request_id)
            except NotCompletedError:
                probed_early = True
            else:
                probed_early = False
            yield from client.wait_all()
            return probed_early, client.probe(req.request_id)

        early, late = engine.run_process(run())
        assert early is True and late == 0

    def test_probe_unknown_session(self, deployment):
        client = deployment.client
        client.initialize({"MA_name": "MA"})
        with pytest.raises(InvalidSessionError):
            client.probe(999)

    def test_wait_any_returns_first(self, deployment):
        client, engine = deployment.client, deployment.engine

        def run():
            client.initialize({"MA_name": "MA"})
            client.call_async(fresh_profile(1))
            client.call_async(fresh_profile(2))
            sid = yield from client.wait_any()
            return sid

        sid = engine.run_process(run())
        assert sid in (1, 2)

    def test_async_request_wait_helper(self, deployment):
        client, engine = deployment.client, deployment.engine

        def run():
            client.initialize({"MA_name": "MA"})
            req = client.call_async(fresh_profile(7))
            status = yield from req.wait()
            return status, req.done

        status, done = engine.run_process(run())
        assert status == 0 and done
