"""Grid-wide memoization on the scheduling path, in both routing modes.

The MA consults the shared MemoIndex before scheduling (pull submit path
and push admission loop alike); SeDs populate it on successful solves
whose outputs kept a server copy.  A SeD crash invalidates every entry
it owned through the data manager's crash cleanup, and the heartbeat
deregistration cascade (``remove_child``) does the same for entries that
survived to that point — a client that raced the crash falls back to a
plain re-solve.
"""

import pytest

from repro.core import (
    BaseType,
    PersistenceMode,
    ProfileDesc,
    scalar_desc,
)
from repro.core.agent import ROUTING_MODES, AgentParams
from repro.core.federation import (
    FederatedClient,
    FederationConfig,
    build_federation,
)
from repro.data.memo import descriptor_digest
from repro.sim import Engine


def _desc(out_mode=PersistenceMode.PERSISTENT_RETURN):
    desc = ProfileDesc("memo-svc", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT, out_mode))
    return desc


def _profile(value, out_mode=PersistenceMode.PERSISTENT_RETURN):
    profile = _desc(out_mode).instantiate()
    profile.parameter(0).set(value)
    profile.parameter(1).set(None)
    return profile


def _solve(profile, ctx):
    yield from ctx.execute(0.5)
    profile.parameter(1).set(profile.parameter(0).get() * 2)
    return 0


def _build(routing, out_mode=PersistenceMode.PERSISTENT_RETURN):
    """2 grids x 1 cluster, memoization on, fast heartbeats so a crashed
    SeD is deregistered (and stops being scheduled) within ~5 sim-seconds.
    """
    engine = Engine()
    federation = build_federation(
        engine,
        FederationConfig(n_grids=2, clusters_per_grid=1, routing=routing,
                         memo=True,
                         agent_params=AgentParams(
                             heartbeat_interval=1.0, heartbeat_timeout=1.0,
                             heartbeat_miss_threshold=2)))
    federation.add_service_everywhere(lambda: _desc(out_mode), _solve)
    federation.launch_all()
    client = FederatedClient(federation.fabric, federation.client_host,
                             name="cli", ma_names=federation.ma_names,
                             memo_enabled=True)
    return engine, federation, client


def _sed_by_name(federation, name):
    return next(s for s in federation.seds if s.name == name)


class TestMemoOnSchedulingPath:
    @pytest.mark.parametrize("routing", ROUTING_MODES)
    def test_repeat_request_hits_and_returns_same_result(self, routing):
        engine, federation, client = _build(routing)
        results = []

        def call(value):
            profile = _profile(value)
            status, sed, _found = yield from client.call(profile)
            results.append((status, profile.parameter(1).get(), sed))

        def drive():
            yield from call(7)   # miss: scheduled + solved
            yield from call(7)   # hit: served from the memo owner
            yield from call(9)   # different input: its own miss

        engine.run_until_complete(drive())
        assert [r[0] for r in results] == [0, 0, 0]
        assert results[0][1] == results[1][1] == 14
        assert results[2][1] == 18
        # The hit names the SeD that solved the first call.
        assert results[1][2] == results[0][2]
        assert federation.memo.stats.hits == 1
        assert federation.memo.stats.misses == 2
        assert federation.memo.stats.populated == 2

    @pytest.mark.parametrize("routing", ROUTING_MODES)
    def test_crash_invalidates_then_resolve_repopulates(self, routing):
        engine, federation, client = _build(routing)
        key = descriptor_digest(_profile(7))
        results = []

        def call():
            profile = _profile(7)
            status, sed, _found = yield from client.call(profile)
            results.append((status, profile.parameter(1).get(), sed))

        def drive():
            yield from call()                      # miss + populate
            yield from call()                      # hit
            owner = federation.memo.peek(key).owner
            _sed_by_name(federation, owner).crash()
            # data-manager crash cleanup dropped the entry synchronously
            assert key not in federation.memo
            assert federation.memo.stats.invalidations >= 1
            # wait out heartbeat deregistration so the dead SeD is no
            # longer schedulable, then re-solve on a survivor
            yield engine.timeout(10.0)
            yield from call()                      # miss again: re-solve
            assert federation.memo.peek(key) is not None
            assert federation.memo.peek(key).owner != owner
            yield from call()                      # hit from the new owner

        engine.run_until_complete(drive())
        assert [r[0] for r in results] == [0, 0, 0, 0]
        assert [r[1] for r in results] == [14, 14, 14, 14]
        assert federation.memo.stats.hits == 2
        assert federation.memo.stats.misses == 2
        assert federation.memo.stats.populated == 2

    @pytest.mark.parametrize("routing", ROUTING_MODES)
    def test_stale_hit_falls_back_to_resolve(self, routing):
        """A hit pointing at a dead SeD (the client raced the crash) must
        degrade to a plain re-solve, not an error."""
        engine, federation, client = _build(routing)
        key = descriptor_digest(_profile(7))
        results = []

        def call():
            profile = _profile(7)
            status, sed, _found = yield from client.call(profile)
            results.append((status, profile.parameter(1).get(), sed))

        def drive():
            yield from call()                      # populate
            stale = federation.memo.peek(key)
            _sed_by_name(federation, stale.owner).crash()
            yield engine.timeout(10.0)             # heartbeat deregisters
            # Re-insert the stale entry: the window where a crash has not
            # yet propagated to the index the MA consulted.
            assert federation.memo.put(stale, engine.now)
            yield from call()                      # hit -> dead fetch -> fallback

        engine.run_until_complete(drive())
        assert [r[0] for r in results] == [0, 0]
        assert [r[1] for r in results] == [14, 14]
        assert results[1][2] != results[0][2]      # a survivor solved it
        assert client.memo_fallbacks == 1
        assert federation.memo.stats.hits == 1

    @pytest.mark.parametrize("routing", ROUTING_MODES)
    def test_volatile_output_never_memoized(self, routing):
        engine, federation, client = _build(
            routing, out_mode=PersistenceMode.VOLATILE)
        results = []

        def drive():
            for _ in range(2):
                profile = _profile(7, out_mode=PersistenceMode.VOLATILE)
                status, _sed, _found = yield from client.call(profile)
                results.append((status, profile.parameter(1).get()))

        engine.run_until_complete(drive())
        assert results == [(0, 14), (0, 14)]
        # VOLATILE leaves no server copy to point at: every lookup
        # misses and nothing is ever populated.
        assert len(federation.memo) == 0
        assert federation.memo.stats.populated == 0
        assert federation.memo.stats.hits == 0
        assert federation.memo.stats.misses == 2

    @pytest.mark.parametrize("routing", ROUTING_MODES)
    def test_memo_disabled_schedules_every_request(self, routing):
        engine = Engine()
        federation = build_federation(
            engine,
            FederationConfig(n_grids=2, clusters_per_grid=1,
                             routing=routing))
        federation.add_service_everywhere(_desc, _solve)
        federation.launch_all()
        client = FederatedClient(federation.fabric, federation.client_host,
                                 name="cli", ma_names=federation.ma_names)
        assert federation.memo is None
        results = []

        def drive():
            for _ in range(2):
                profile = _profile(7)
                status, _sed, _found = yield from client.call(profile)
                results.append((status, profile.parameter(1).get()))

        engine.run_until_complete(drive())
        assert results == [(0, 14), (0, 14)]
