"""Unit tests for GoDIET-style XML deployment descriptions."""

import pytest

from repro.core import BaseType, DietError, ProfileDesc, scalar_desc
from repro.core.godiet import (
    AgentSpec,
    HierarchySpec,
    SedSpec,
    deploy_from_spec,
    paper_hierarchy_spec,
    parse_godiet_xml,
    render_godiet_xml,
)
from repro.platform import build_grid5000
from repro.sim import Engine


SAMPLE = """
<diet_configuration>
  <client host="lyon-ma"/>
  <master_agent name="MA" host="lyon-ma">
    <local_agent name="LA-a" host="lyon-capricorne-frontend">
      <sed name="SeD-1" host="lyon-capricorne-sed0"/>
      <sed name="SeD-2" host="lyon-capricorne-sed1"/>
    </local_agent>
    <local_agent name="LA-b" host="nancy-grillon-frontend">
      <local_agent name="LA-b-deep" host="nancy-grillon-frontend"/>
      <sed name="SeD-3" host="nancy-grillon-sed0"/>
    </local_agent>
  </master_agent>
</diet_configuration>
"""


class TestParse:
    def test_parse_structure(self):
        spec = parse_godiet_xml(SAMPLE)
        assert spec.master.name == "MA"
        assert [c.name for c in spec.master.children] == ["LA-a", "LA-b"]
        assert [s.name for s in spec.master.all_seds()] == ["SeD-1", "SeD-2",
                                                            "SeD-3"]
        assert spec.client_host == "lyon-ma"
        # nested LA supported
        assert spec.master.children[1].children[0].name == "LA-b-deep"

    def test_roundtrip(self):
        spec = parse_godiet_xml(SAMPLE)
        again = parse_godiet_xml(render_godiet_xml(spec))
        assert [a.name for a in again.master.all_agents()] == \
            [a.name for a in spec.master.all_agents()]
        assert [s.name for s in again.master.all_seds()] == \
            [s.name for s in spec.master.all_seds()]

    def test_malformed_rejected(self):
        with pytest.raises(DietError, match="malformed"):
            parse_godiet_xml("<diet_configuration>")
        with pytest.raises(DietError, match="root element"):
            parse_godiet_xml("<wrong/>")
        with pytest.raises(DietError, match="master_agent"):
            parse_godiet_xml("<diet_configuration/>")

    def test_missing_attributes_rejected(self):
        with pytest.raises(DietError, match="name"):
            parse_godiet_xml(
                "<diet_configuration><master_agent host='h'/>"
                "</diet_configuration>")

    def test_duplicate_names_rejected(self):
        spec = HierarchySpec(master=AgentSpec(
            name="MA", host="h",
            seds=[SedSpec("X", "h1"), SedSpec("X", "h2")]))
        with pytest.raises(DietError, match="duplicate"):
            spec.validate()

    def test_empty_hierarchy_rejected(self):
        spec = HierarchySpec(master=AgentSpec(name="MA", host="h"))
        with pytest.raises(DietError, match="no SeD"):
            spec.validate()


class TestDeploy:
    def test_paper_spec_matches_builtin_deployment(self):
        platform = build_grid5000(Engine())
        spec = paper_hierarchy_spec(platform)
        assert len(spec.master.children) == 6
        assert len(spec.master.all_seds()) == 11

    def test_deploy_from_xml_end_to_end(self):
        engine = Engine()
        platform = build_grid5000(engine)
        spec = parse_godiet_xml(render_godiet_xml(
            paper_hierarchy_spec(platform)))
        deployment = deploy_from_spec(platform, spec)
        assert len(deployment.seds) == 11
        assert len(deployment.local_agents) == 6

        desc = ProfileDesc("svc", 0, 0, 1)
        desc.set_arg(0, scalar_desc(BaseType.INT))
        desc.set_arg(1, scalar_desc(BaseType.INT))

        def solve(profile, ctx):
            yield from ctx.execute(0.1)
            profile.parameter(1).set(profile.parameter(0).get() * 3)
            return 0

        for sed in deployment.seds:
            sed.add_service(desc, solve)
        deployment.launch_all()

        client = deployment.client
        profile = desc.instantiate()
        profile.parameter(0).set(14)
        profile.parameter(1).set(None)

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call(profile))

        assert engine.run_process(run()) == 0
        assert profile.parameter(1).get() == 42

    def test_unknown_host_rejected(self):
        platform = build_grid5000(Engine())
        spec = HierarchySpec(master=AgentSpec(
            name="MA", host="no-such-host",
            seds=[SedSpec("S", "also-missing")]))
        with pytest.raises(Exception):
            deploy_from_spec(platform, spec)

    def test_deep_hierarchy_routes_requests(self):
        """A 3-level hierarchy (MA -> LA -> LA -> SeD) still schedules."""
        engine = Engine()
        platform = build_grid5000(engine)
        inner = AgentSpec(name="LA-inner",
                          host="nancy-grillon-frontend",
                          seds=[SedSpec("SeD-deep", "nancy-grillon-sed0")])
        spec = HierarchySpec(
            master=AgentSpec(name="MA", host="lyon-ma",
                             children=[AgentSpec(
                                 name="LA-outer",
                                 host="nancy-grillon-frontend",
                                 children=[inner])]),
            client_host="lyon-ma")
        deployment = deploy_from_spec(platform, spec)

        desc = ProfileDesc("svc", 0, 0, 1)
        desc.set_arg(0, scalar_desc(BaseType.INT))
        desc.set_arg(1, scalar_desc(BaseType.INT))

        def solve(profile, ctx):
            yield from ctx.execute(0.1)
            profile.parameter(1).set(1)
            return 0

        deployment.seds[0].add_service(desc, solve)
        deployment.launch_all()

        client = deployment.client
        profile = desc.instantiate()
        profile.parameter(0).set(0)
        profile.parameter(1).set(None)
        servers = []

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("svc")
            status = yield from client.call(profile, handle)
            servers.append(handle.server)
            return status

        assert engine.run_process(run()) == 0
        assert servers == ["SeD-deep"]
