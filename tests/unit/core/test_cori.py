"""Unit tests for the CoRI resource collector."""

import pytest

from repro.core import CoRI
from repro.core.scheduling import (
    EST_COMMTIME,
    EST_FREECPU,
    EST_FREEMEM,
    EST_NBJOBS,
    EST_SPEED,
    EST_TCOMP,
    EST_TIMESINCELASTSOLVE,
)
from repro.sim import Engine, Host, Link, Network


@pytest.fixture
def stack():
    engine = Engine()
    net = Network(engine)
    host = net.add_host(Host(engine, "sed", speed=2.4, cores=2,
                             properties={"memory_gib": 32.0}))
    net.add_host(Host(engine, "client"))
    net.connect("sed", "client", Link(engine, "l", 0.01, 1e6))
    return engine, net, host


def collect(engine, cori, **kwargs):
    def proc():
        est = yield from cori.collect("sed", kwargs.pop("n_jobs", 0), **kwargs)
        return est

    return engine.run_process(proc())


class TestCollect:
    def test_standard_tags(self, stack):
        engine, net, host = stack
        cori = CoRI(engine, host, net)
        est = collect(engine, cori, n_jobs=3)
        assert est.get(EST_SPEED) == 2.4
        assert est.get(EST_NBJOBS) == 3.0
        assert est.get(EST_FREECPU) == 1.0
        assert est.get(EST_FREEMEM) == 32.0

    def test_collection_takes_time(self, stack):
        engine, net, host = stack
        cori = CoRI(engine, host, net, collect_time=0.02)

        def proc():
            yield from cori.collect("sed", 0)
            return engine.now

        assert engine.run_process(proc()) == pytest.approx(0.02)

    def test_free_cpu_reflects_occupancy(self, stack):
        engine, net, host = stack
        cori = CoRI(engine, host, net)
        host.cpu.request()   # occupy 1 of 2 cores
        est = collect(engine, cori)
        assert est.get(EST_FREECPU) == pytest.approx(0.5)

    def test_commtime_prediction(self, stack):
        engine, net, host = stack
        cori = CoRI(engine, host, net)
        est = collect(engine, cori, client_host="client",
                      request_nbytes=1_000_000)
        assert est.get(EST_COMMTIME) == pytest.approx(0.01 + 1.0)

    def test_tcomp_absent_without_predictor(self, stack):
        engine, net, host = stack
        est = collect(engine, CoRI(engine, host, net))
        assert est.get(EST_TCOMP) == float("inf")

    def test_tcomp_present_with_prediction(self, stack):
        engine, net, host = stack
        est = collect(engine, CoRI(engine, host, net), predicted_tcomp=77.0)
        assert est.get(EST_TCOMP) == 77.0

    def test_time_since_last_solve(self, stack):
        engine, net, host = stack
        cori = CoRI(engine, host, net)

        def proc():
            yield engine.timeout(5.0)
            cori.note_solve_end()
            yield engine.timeout(3.0)
            est = yield from cori.collect("sed", 0)
            return est

        est = engine.run_process(proc())
        # 3s of idle + the collect_time itself
        assert est.get(EST_TIMESINCELASTSOLVE) == pytest.approx(
            3.0 + cori.collect_time)
