"""Unit tests for Local-Agent-level estimate aggregation (§2.1 sorting)."""

from repro.core import (
    AgentParams,
    BaseType,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.platform import build_grid5000
from repro.sim import Engine


def toy_desc():
    desc = ProfileDesc("toy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def solve_toy(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(0)
    return 0


def build(top_k):
    dep = deploy_paper_hierarchy(
        build_grid5000(Engine()),
        agent_params=AgentParams(aggregate_top_k=top_k))
    for sed in dep.seds:
        sed.add_service(toy_desc(), solve_toy)
    dep.launch_all()
    dep.client.initialize({"MA_name": "MA"})
    return dep


def run_requests(dep, n):
    client = dep.client

    def session():
        for i in range(n):
            p = toy_desc().instantiate()
            p.parameter(0).set(i)
            p.parameter(1).set(None)
            client.call_async(p)
        yield from client.wait_all()

    dep.engine.run_process(session())


class TestTopKAggregation:
    def test_top1_ma_sees_one_candidate_per_cluster(self):
        dep = build(top_k=1)
        run_requests(dep, 1)
        (event,) = [e for e in dep.tracer.events if e[1] == "schedule"]
        assert event[2]["n_candidates"] == 6     # one per LA, not 11

    def test_no_truncation_by_default(self):
        dep = build(top_k=None)
        run_requests(dep, 1)
        (event,) = [e for e in dep.tracer.events if e[1] == "schedule"]
        assert event[2]["n_candidates"] == 11

    def test_requests_still_complete_under_top1(self):
        dep = build(top_k=1)
        run_requests(dep, 12)
        traces = dep.tracer.all_traces("toy")
        assert len(traces) == 12
        assert all(t.status == 0 for t in traces)

    def test_top1_prefers_idle_then_fast_sed(self):
        """Within a cluster the LA forwards the less-loaded/faster SeD."""
        dep = build(top_k=1)
        run_requests(dep, 6)
        # 6 requests, 6 clusters: with one candidate per cluster each goes
        # to a different cluster
        counts = dep.tracer.requests_per_sed("toy")
        clusters = {dep.cluster_of_sed(s) for s in counts}
        assert len(clusters) == 6

    def test_truncation_shrinks_response_traffic(self):
        full = build(top_k=None)
        run_requests(full, 4)
        trimmed = build(top_k=1)
        run_requests(trimmed, 4)
        assert trimmed.fabric.bytes_sent < full.fabric.bytes_sent
