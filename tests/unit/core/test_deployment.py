"""Unit tests for the GoDIET-like deployment builder."""

import pytest

from repro.core import (
    BaseType,
    DietError,
    MCTPolicy,
    ProfileDesc,
    SeDParams,
    TransportParams,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.platform import build_grid5000
from repro.sim import Engine


@pytest.fixture
def platform():
    return build_grid5000(Engine())


class TestPaperHierarchy:
    def test_structure(self, platform):
        dep = deploy_paper_hierarchy(platform)
        assert dep.ma.name == "MA"
        assert len(dep.local_agents) == 6       # one LA per cluster
        assert len(dep.seds) == 11              # the paper's SeD count
        assert dep.client is not None

    def test_ma_children_are_the_las(self, platform):
        dep = deploy_paper_hierarchy(platform)
        assert sorted(dep.ma.children) == sorted(la.name for la in dep.local_agents)

    def test_las_own_their_cluster_seds(self, platform):
        dep = deploy_paper_hierarchy(platform)
        for la in dep.local_agents:
            cluster = la.name.removeprefix("LA-")
            for child in la.children:
                assert cluster in child

    def test_seds_have_nfs(self, platform):
        dep = deploy_paper_hierarchy(platform)
        for sed in dep.seds:
            assert sed.nfs is not None
            assert sed.nfs.is_mounted_on(sed.host.name)

    def test_policy_override(self, platform):
        dep = deploy_paper_hierarchy(platform, policy=MCTPolicy())
        assert isinstance(dep.ma.policy, MCTPolicy)

    def test_params_propagate(self, platform):
        dep = deploy_paper_hierarchy(
            platform,
            sed_params=SeDParams(service_init_time=0.5),
            transport_params=TransportParams(marshal_fixed=9e-3))
        assert dep.seds[0].params.service_init_time == 0.5
        assert dep.fabric.params.marshal_fixed == 9e-3

    def test_without_client(self, platform):
        dep = deploy_paper_hierarchy(platform, with_client=False)
        assert dep.client is None

    def test_sed_lookup(self, platform):
        dep = deploy_paper_hierarchy(platform)
        name = dep.sed_names[0]
        assert dep.sed_by_name(name).name == name
        with pytest.raises(DietError):
            dep.sed_by_name("SeD-ghost")

    def test_cluster_of_sed(self, platform):
        dep = deploy_paper_hierarchy(platform)
        assert dep.cluster_of_sed("SeD-nancy-grillon-sed0") == "nancy-grillon"

    def test_launch_all_serves(self, platform):
        dep = deploy_paper_hierarchy(platform)
        desc = ProfileDesc("t", 0, 0, 1)
        desc.set_arg(0, scalar_desc(BaseType.INT))
        desc.set_arg(1, scalar_desc(BaseType.INT))

        def solve(profile, ctx):
            yield from ctx.execute(0.1)
            profile.parameter(1).set(1)
            return 0

        for sed in dep.seds:
            sed.add_service(desc, solve)
        dep.launch_all()

        client = dep.client
        profile = desc.instantiate()
        profile.parameter(0).set(1)
        profile.parameter(1).set(None)

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call(profile))

        assert dep.engine.run_process(run()) == 0
