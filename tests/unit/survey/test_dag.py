"""Unit tests for the survey DAG and its executor (repro.survey.dag).

The executor is exercised against a scripted stub client so the tests pin
the orchestration contract in isolation: insertion-ordered launches,
bounded in-flight width, diamond dependencies, dead-letter retry and the
dependency-aware refresh of crashed persistent producers.
"""

import pytest

from repro.core.data import (
    BaseType,
    DataHandle,
    PersistenceMode,
    scalar_desc,
)
from repro.core.exceptions import ServerNotFoundError
from repro.core.profile import ProfileDesc
from repro.core.statistics import Tracer
from repro.sim.engine import Engine
from repro.survey.dag import DagError, DagExecutor, DagNodeFailed, SurveyDAG


def _desc(name: str) -> ProfileDesc:
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT, PersistenceMode.PERSISTENT_RETURN))
    return desc


class ScriptedClient:
    """A stand-in DIET client: per-service scripted outcomes.

    ``script[service]`` is a list consumed per call: an Exception instance
    is raised, an int is the solve status, a (status, out_value) pair also
    sets the OUT argument.  An exhausted (or absent) script succeeds with
    status 0 and OUT value 0.
    """

    def __init__(self, engine, script=None, solve_time=1.0):
        self.engine = engine
        self.tracer = Tracer()
        self.script = dict(script or {})
        self.solve_time = solve_time
        self.calls = []
        self.in_flight = 0
        self.max_in_flight_seen = 0

    def call(self, profile):
        self.calls.append(profile.path)
        self.in_flight += 1
        self.max_in_flight_seen = max(self.max_in_flight_seen, self.in_flight)
        try:
            yield self.engine.timeout(self.solve_time)
        finally:
            self.in_flight -= 1
        action = 0
        if self.script.get(profile.path):
            action = self.script[profile.path].pop(0)
        if isinstance(action, Exception):
            raise action
        status, value = action if isinstance(action, tuple) else (action, 0)
        profile.parameter(1).set(value)
        return status, "stub-sed", self.engine.now


def _builder(service, results_of=(), record=None):
    """A profile builder that optionally reads upstream OUT values."""

    def build(results):
        for dep in results_of:
            results[dep].output(1)  # raises KeyError if dep missing
        if record is not None:
            record.append(service)
        profile = _desc(service).instantiate()
        profile.parameter(0).set(1)
        profile.parameter(1).set(None)
        return profile

    return build


def _run(executor):
    engine = executor.engine
    state = {}

    def drive():
        state["results"] = yield from executor.run()

    engine.run_until_complete(drive())
    return state["results"]


class TestSurveyDAG:
    def test_rejects_duplicate_nodes(self):
        dag = SurveyDAG()
        dag.add_node("a", "svc", _builder("svc"))
        with pytest.raises(DagError):
            dag.add_node("a", "svc", _builder("svc"))

    def test_rejects_unknown_dependency(self):
        dag = SurveyDAG()
        with pytest.raises(DagError):
            dag.add_node("b", "svc", _builder("svc"), deps=("a",))

    def test_roots_leaves_and_stages(self):
        dag = SurveyDAG()
        dag.add_node("a", "svc", _builder("svc"), stage="ic")
        dag.add_node("b", "svc", _builder("svc"), deps=("a",), stage="run")
        assert dag.roots() == ["a"]
        assert dag.leaves() == ["b"]
        assert dag.stages() == ["ic", "run"]


class TestDagExecutor:
    def test_diamond_dependencies_execute_in_topological_order(self):
        """a -> (b, c) -> d: the join waits for both branches and reads
        both results (the reduce-tree shape of the survey pipeline)."""
        engine = Engine()
        client = ScriptedClient(engine)
        order = []
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa", record=order))
        dag.add_node("b", "sb", _builder("sb", ("a",), record=order), deps=("a",))
        dag.add_node("c", "sc", _builder("sc", ("a",), record=order), deps=("a",))
        dag.add_node(
            "d", "sd", _builder("sd", ("b", "c"), record=order), deps=("b", "c")
        )
        results = _run(DagExecutor(client, dag))
        assert set(results) == {"a", "b", "c", "d"}
        assert order == ["sa", "sb", "sc", "sd"]
        assert all(r.status == 0 for r in results.values())

    def test_in_flight_width_is_bounded(self):
        engine = Engine()
        client = ScriptedClient(engine)
        dag = SurveyDAG()
        for i in range(6):
            dag.add_node(f"n{i}", f"s{i}", _builder(f"s{i}"))
        executor = DagExecutor(client, dag, max_in_flight=2)
        _run(executor)
        assert client.max_in_flight_seen == 2
        assert executor.stats.completed == 6

    def test_independent_nodes_launch_in_insertion_order(self):
        engine = Engine()
        client = ScriptedClient(engine)
        dag = SurveyDAG()
        for name in ("first", "second", "third"):
            dag.add_node(name, name, _builder(name))
        _run(DagExecutor(client, dag, max_in_flight=1))
        assert client.calls == ["first", "second", "third"]

    def test_dead_letter_retries_then_succeeds(self):
        engine = Engine()
        client = ScriptedClient(engine, script={"sa": [ServerNotFoundError("no sed")]})
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa"))
        executor = DagExecutor(client, dag, max_attempts=3)
        results = _run(executor)
        assert results["a"].status == 0
        assert results["a"].attempts == 2
        assert executor.stats.dead_letters == 1
        assert executor.stats.retries == 1

    def test_dead_letter_exhausts_attempts(self):
        engine = Engine()
        client = ScriptedClient(engine, script={"sa": [ServerNotFoundError("x")] * 5})
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa"))
        executor = DagExecutor(client, dag, max_attempts=2)
        with pytest.raises(DagNodeFailed) as info:
            _run(executor)
        assert info.value.node_id == "a"
        assert executor.stats.dead_letters == 2

    def test_failed_solve_refreshes_handle_valued_dependencies(self):
        """b consumes a's PERSISTENT handle; b's first solve fails (the
        producer SeD died with the data), so the executor must re-run a,
        rebuild b's profile against the fresh handle, and succeed."""
        engine = Engine()
        handle = DataHandle(data_id="sed/req1/arg1", sed_name="sed", nbytes=64)
        client = ScriptedClient(
            engine, script={"sa": [(0, handle), (0, handle)], "sb": [1]}
        )
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa"))
        dag.add_node("b", "sb", _builder("sb", ("a",)), deps=("a",))
        executor = DagExecutor(client, dag)
        results = _run(executor)
        assert results["b"].status == 0
        assert executor.stats.dep_refreshes == 1
        # a ran twice: the initial execution plus the refresh.
        assert client.calls.count("sa") == 2
        assert results["a"].attempts >= 1

    def test_failed_solve_without_handles_fails_for_good(self):
        """A plain application failure (no persistent inputs to refresh)
        must not loop: it surfaces as DagNodeFailed immediately."""
        engine = Engine()
        client = ScriptedClient(engine, script={"sa": [1, 1, 1]})
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa"))
        with pytest.raises(DagNodeFailed, match="solve status 1"):
            _run(DagExecutor(client, dag))

    def test_stage_durations_accumulate_per_stage(self):
        engine = Engine()
        client = ScriptedClient(engine, solve_time=2.0)
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa"), stage="ic")
        dag.add_node("b", "sb", _builder("sb"), stage="ic")
        dag.add_node("c", "sc", _builder("sc"), stage="run")
        executor = DagExecutor(client, dag)
        _run(executor)
        assert sorted(executor.stage_durations) == ["ic", "run"]
        assert len(executor.stage_durations["ic"]) == 2
        assert executor.stage_durations["run"] == [2.0]

    def test_executor_validates_width_and_attempts(self):
        engine = Engine()
        client = ScriptedClient(engine)
        dag = SurveyDAG()
        dag.add_node("a", "sa", _builder("sa"))
        with pytest.raises(DagError):
            DagExecutor(client, dag, max_in_flight=0)
        with pytest.raises(DagError):
            DagExecutor(client, dag, max_attempts=0)
