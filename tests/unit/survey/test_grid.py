"""Unit tests for the cosmology parameter grid (repro.survey.grid)."""

import pytest

from repro.survey.grid import (
    PARAMETER_NAMES,
    CosmologyPoint,
    ParameterGrid,
    parse_cosmology_text,
)


class TestCosmologyPoint:
    def test_defaults_are_the_survey_base(self):
        point = CosmologyPoint()
        assert point.h0 == 72.0
        assert point.omega_m == 0.26
        assert point.w0 == -1.0

    def test_label_encodes_the_sweep_axes(self):
        label = CosmologyPoint(omega_m=0.3, sigma8=0.85).label
        assert "Om0.300" in label and "si0.850" in label

    def test_labels_distinguish_points(self):
        a = CosmologyPoint(omega_m=0.24)
        b = CosmologyPoint(omega_m=0.26)
        assert a.label != b.label

    def test_digest_is_stable_and_parameter_sensitive(self):
        assert CosmologyPoint().digest == CosmologyPoint().digest
        assert CosmologyPoint(sigma8=0.8).digest != CosmologyPoint(sigma8=0.81).digest
        assert len(CosmologyPoint().digest) == 16

    def test_rejects_non_finite_parameters(self):
        with pytest.raises(ValueError):
            CosmologyPoint(h0=float("nan"))
        with pytest.raises(ValueError):
            CosmologyPoint(omega_m=float("inf"))

    def test_cosmology_text_roundtrips(self):
        point = CosmologyPoint(omega_m=0.31, sigma8=0.79, w0=-0.9)
        assert parse_cosmology_text(point.cosmology_text()) == point

    def test_parse_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            parse_cosmology_text("omega_k = 0.1\n")

    def test_as_dict_covers_every_parameter(self):
        assert tuple(CosmologyPoint().as_dict()) == PARAMETER_NAMES


class TestParameterGrid:
    def test_cartesian_shape_and_order(self):
        axes = {"omega_m": (0.24, 0.26), "sigma8": (0.75, 0.8, 0.85)}
        grid = ParameterGrid.cartesian(axes)
        assert len(grid) == 6
        # First axis is the outer loop: omega_m varies slowest.
        assert [p.omega_m for p in grid][:3] == [0.24, 0.24, 0.24]
        assert [p.sigma8 for p in grid][:3] == [0.75, 0.8, 0.85]

    def test_cartesian_respects_base_point(self):
        base = CosmologyPoint(h0=70.0)
        grid = ParameterGrid.cartesian({"sigma8": (0.8,)}, base=base)
        assert grid[0].h0 == 70.0

    def test_from_points_applies_overrides(self):
        specs = [{"omega_m": 0.3}, CosmologyPoint(sigma8=0.7)]
        grid = ParameterGrid.from_points(specs)
        assert grid[0].omega_m == 0.3
        assert grid[1].sigma8 == 0.7

    def test_digests_are_unique_across_the_grid(self):
        axes = {"omega_m": (0.24, 0.26, 0.28), "sigma8": (0.75, 0.8)}
        grid = ParameterGrid.cartesian(axes)
        assert len(set(grid.digests())) == len(grid)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid([])

    def test_identical_grids_compare_equal(self):
        axes = {"omega_m": (0.24, 0.26)}
        assert ParameterGrid.cartesian(axes) == ParameterGrid.cartesian(axes)
