"""Unit tests for the LensTools-style batch layout (repro.survey.batch)."""

import json
import os

import pytest

from repro.core.data import DataHandle, FileRef
from repro.survey.batch import HOME_BYTES_LIMIT, SurveyBatch
from repro.survey.grid import CosmologyPoint


@pytest.fixture
def batch(tmp_path):
    return SurveyBatch(str(tmp_path), name="campaign")


class TestLayout:
    def test_home_and_storage_trees_created(self, batch):
        assert os.path.isdir(batch.home)
        assert os.path.isdir(batch.storage)

    def test_init_point_writes_parameters_and_digest(self, batch):
        point = CosmologyPoint(omega_m=0.3)
        directory = batch.init_point(point)
        with open(os.path.join(directory, "cosmology.ini")) as fh:
            assert fh.read() == point.cosmology_text()
        with open(os.path.join(directory, "digest.txt")) as fh:
            assert fh.read().strip() == point.digest


class TestProducts:
    def test_small_inline_file_lands_in_home(self, batch):
        point = CosmologyPoint()
        ref = FileRef.from_text("ic.ini", "seed = 1\n")
        record = batch.record_product(point, "ic", ref)
        assert record.location == "home"
        with open(os.path.join(batch.home, point.label, "ic.ini")) as fh:
            assert fh.read() == "seed = 1\n"

    def test_large_inline_file_gets_storage_placeholder(self, batch):
        point = CosmologyPoint()
        ref = FileRef(path="slabs.npy", nbytes=HOME_BYTES_LIMIT + 1)
        record = batch.record_product(point, "run", ref)
        assert record.location == "storage"
        meta = os.path.join(batch.storage, point.label, "run", "slabs.npy.meta.json")
        with open(meta) as fh:
            assert json.load(fh)["nbytes"] == HOME_BYTES_LIMIT + 1

    def test_handle_recorded_as_grid_resident(self, batch):
        handle = DataHandle(data_id="sed0/req3/arg5", sed_name="sed0", nbytes=4096)
        record = batch.record_product("label", "lensing", handle)
        assert record.location == "grid"
        assert record.sed == "sed0"
        assert record.data_id == "sed0/req3/arg5"

    def test_rejects_non_products(self, batch):
        with pytest.raises(TypeError):
            batch.record_product("label", "ic", object())

    def test_manifest_sorted_and_written(self, batch):
        b = CosmologyPoint(omega_m=0.3)
        a = CosmologyPoint(omega_m=0.24)
        batch.record_product(b, "run", FileRef.from_text("x.txt", "x"))
        batch.record_product(a, "ic", FileRef.from_text("y.txt", "y"))
        manifest = batch.manifest()
        assert [r["point"] for r in manifest] == sorted([a.label, b.label])
        path = batch.write_manifest()
        with open(path) as fh:
            assert json.load(fh) == manifest

    def test_summary_counts_by_location(self, batch):
        batch.record_product("p", "ic", FileRef.from_text("a.txt", "a"))
        handle = DataHandle(data_id="sed/req/arg", sed_name="sed", nbytes=1)
        batch.record_product("p", "run", handle)
        assert batch.summary() == {"grid": 1, "home": 1, "storage": 0}
