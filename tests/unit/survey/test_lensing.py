"""Unit tests for the Born-approximation lensing kernels
(repro.survey.lensing)."""

import numpy as np

from repro.survey.lensing import (
    born_convergence,
    comoving_distance,
    density_slabs,
    hubble_e,
    lens_planes,
    lensing_weights,
    stack_maps,
)

H0, OM = 72.0, 0.26


class TestBackground:
    def test_hubble_e_is_one_today(self):
        assert hubble_e(0.0, OM) == 1.0

    def test_hubble_e_grows_with_redshift(self):
        zs = np.linspace(0.0, 3.0, 10)
        es = [hubble_e(z, OM) for z in zs]
        assert all(b > a for a, b in zip(es, es[1:]))

    def test_comoving_distance_monotonic(self):
        ds = [comoving_distance(z, H0, OM) for z in (0.0, 0.5, 1.0, 2.0)]
        assert ds[0] == 0.0
        assert all(b > a for a, b in zip(ds, ds[1:]))

    def test_dark_energy_equation_of_state_matters(self):
        fiducial = comoving_distance(1.0, H0, OM, w0=-1.0)
        assert comoving_distance(1.0, H0, OM, w0=-0.8) != fiducial


class TestLensPlanes:
    def test_equal_comoving_spacing(self):
        z, chi, dchi = lens_planes(8, 1.0, H0, OM)
        assert len(z) == len(chi) == 8
        assert dchi > 0
        np.testing.assert_allclose(np.diff(chi), dchi, rtol=1e-6)

    def test_weights_positive_between_observer_and_source(self):
        weights = lensing_weights(8, 1.0, H0, OM)
        assert weights.shape == (8,)
        assert np.all(weights > 0)


class TestConvergence:
    def test_born_convergence_is_linear_in_the_slabs(self):
        rng = np.random.default_rng(3)
        slabs = rng.standard_normal((4, 8, 8))
        kappa = born_convergence(slabs, 1.0, H0, OM)
        doubled = born_convergence(2.0 * slabs, 1.0, H0, OM)
        assert kappa.shape == (8, 8)
        np.testing.assert_allclose(doubled, 2.0 * kappa, rtol=1e-10)

    def test_density_slabs_deterministic_per_seed(self):
        a = density_slabs(16, 4, seed=11)
        b = density_slabs(16, 4, seed=11)
        c = density_slabs(16, 4, seed=12)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_density_slabs_normalized_to_sigma8(self):
        slabs = density_slabs(32, 3, seed=5, sigma8=0.8)
        rms = np.sqrt((slabs**2).mean(axis=(1, 2)))
        np.testing.assert_allclose(rms, 0.8, rtol=1e-6)

    def test_stack_maps_weighted_mean(self):
        a, b = np.ones((4, 4)), 3.0 * np.ones((4, 4))
        stacked = stack_maps([a, b], [1, 3])
        np.testing.assert_allclose(stacked, 2.5)
