"""Unit tests for the ramsesZoom1/ramsesZoom2 services and client helpers."""

import os
import tarfile

import pytest

from repro.core import Direction, FileRef
from repro.platform import build_grid5000
from repro.core.deployment import deploy_paper_hierarchy
from repro.services import (
    COORD_SCALE,
    ExecutionMode,
    RamsesServiceConfig,
    build_zoom1_profile,
    build_zoom2_profile,
    decode_center,
    decode_zoom1,
    decode_zoom2,
    default_namelist_text,
    encode_center,
    register_ramses_services,
    zoom1_profile_desc,
    zoom2_profile_desc,
)
from repro.ramses import parse_namelist
from repro.sim import Engine


class TestProfileDescs:
    def test_zoom2_matches_paper_alloc(self):
        """diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8): 7 IN, 2 OUT."""
        desc = zoom2_profile_desc()
        assert desc.path == "ramsesZoom2"
        assert (desc.last_in, desc.last_inout, desc.last_out) == (6, 6, 8)
        assert all(desc.direction(i) is Direction.IN for i in range(7))
        assert desc.direction(7) is Direction.OUT
        assert desc.direction(8) is Direction.OUT

    def test_zoom1_layout(self):
        desc = zoom1_profile_desc()
        assert desc.path == "ramsesZoom1"
        assert (desc.last_in, desc.last_inout, desc.last_out) == (2, 2, 4)


class TestClientHelpers:
    def test_center_fixed_point_roundtrip(self):
        center = (0.123456, 0.654321, 0.999999)
        encoded = encode_center(center)
        assert all(isinstance(c, int) for c in encoded)
        decoded = decode_center(*encoded)
        assert decoded == pytest.approx(center, abs=1.0 / COORD_SCALE)

    def test_center_wraps(self):
        assert encode_center((1.25, -0.25, 0.5))[0] == 250_000

    def test_build_zoom2_profile_filled(self):
        profile = build_zoom2_profile(default_namelist_text(), 128, 100,
                                      (0.1, 0.2, 0.3), 2)
        profile.validate_for_submit()
        assert profile.parameter(1).get() == 128
        assert profile.parameter(6).get() == 2
        assert profile.parameter(7).get() is None   # OUT declared NULL

    def test_namelist_parses(self):
        nml = parse_namelist(default_namelist_text(resolution=64, n_steps=40))
        assert nml.get_param("run_params", "nstepmax") == 40
        assert nml.get_param("run_params", "cosmo") is True

    def test_decode_zoom2_error_path(self):
        profile = build_zoom2_profile(default_namelist_text(), 64, 100,
                                      (0.5, 0.5, 0.5), 1)
        profile.parameter(8).set(3)   # simulation failed
        result = decode_zoom2(profile)
        assert not result.succeeded
        assert result.tarball is None


@pytest.fixture
def deployment():
    dep = deploy_paper_hierarchy(build_grid5000(Engine()))
    return dep


class TestModeledService:
    def test_zoom2_solve_modeled(self, deployment):
        register_ramses_services(deployment)
        deployment.launch_all()
        client = deployment.client
        profile = build_zoom2_profile(default_namelist_text(), 128, 100,
                                      (0.4, 0.5, 0.6), 2)

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call(profile))

        assert deployment.engine.run_process(run()) == 0
        result = decode_zoom2(profile)
        assert result.succeeded
        assert result.tarball.nbytes > 1e6
        trace = deployment.tracer.all_traces("ramsesZoom2")[0]
        # hours of simulated solve time on a 128^3 zoom
        assert trace.solve_duration > 3600

    def test_zoom1_solve_modeled(self, deployment):
        register_ramses_services(deployment)
        deployment.launch_all()
        client = deployment.client
        profile = build_zoom1_profile(default_namelist_text(), 128, 100)

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call(profile))

        assert deployment.engine.run_process(run()) == 0
        error, catalog = decode_zoom1(profile)
        assert error == 0 and catalog is not None

    def test_nfs_receives_snapshot_traffic(self, deployment):
        register_ramses_services(deployment)
        deployment.launch_all()
        client = deployment.client
        profile = build_zoom1_profile(default_namelist_text(), 128, 100)

        def run():
            client.initialize({"MA_name": "MA"})
            yield from client.call(profile)

        deployment.engine.run_process(run())
        used = sum(c.nfs.used_bytes
                   for c in deployment.platform.clusters.values())
        assert used > 1e8   # the snapshot series landed on some NFS volume

    def test_predictor_registration(self, deployment):
        register_ramses_services(deployment, with_predictor=True)
        for sed in deployment.seds:
            reg = sed._registrations["ramsesZoom2"]
            assert reg.predictor is not None
            assert reg.predictor(None) > 0


class TestRealService:
    def test_zoom2_real_produces_tarball(self, deployment, tmp_path):
        config = RamsesServiceConfig(mode=ExecutionMode.REAL,
                                     workdir=str(tmp_path),
                                     real_n_steps=6, real_a_end=0.4)
        register_ramses_services(deployment, config)
        deployment.launch_all()
        client = deployment.client
        profile = build_zoom2_profile(default_namelist_text(), 8, 50,
                                      (0.5, 0.5, 0.5), 1)

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call(profile))

        assert deployment.engine.run_process(run()) == 0
        result = decode_zoom2(profile)
        assert result.succeeded
        assert os.path.exists(result.tarball.local_path)
        with tarfile.open(result.tarball.local_path) as tar:
            names = tar.getnames()
        assert "halo_catalog.dat" in names
        assert any("output_00001" in n for n in names)

    def test_real_mode_requires_workdir(self):
        with pytest.raises(ValueError):
            RamsesServiceConfig(mode=ExecutionMode.REAL, workdir=None)
