"""zoom2 checkpoint/restart: periodic dumps, resume gating, fault stats.

§4.1 grounds the gating rule: RAMSES restart dumps live on the cluster's
NFS volume and do not cross clusters.  A resubmission that lands back on
the crashed SeD's cluster resumes from the newest checkpoint; one that
lands anywhere else restarts from scratch (and the durable work is lost).
"""

import pytest

from repro.core import BaseType, ProfileDesc, scalar_desc
from repro.core.deployment import deploy_paper_hierarchy
from repro.platform import build_grid5000
from repro.services import (
    RamsesService,
    RamsesServiceConfig,
    build_zoom2_profile,
    default_namelist_text,
    register_ramses_services,
    zoom2_profile_desc,
)
from repro.sim import Engine, FailureInjector, Outage


def deploy():
    return deploy_paper_hierarchy(build_grid5000(Engine()))


def zoom2_profile():
    return build_zoom2_profile(default_namelist_text(), 128, 100,
                               (0.4, 0.5, 0.6), 2)


def dummy_desc():
    desc = ProfileDesc("dummy", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def dummy_solve(profile, ctx):
    yield from ctx.execute(1.0)
    profile.parameter(1).set(1)
    return 0


def register_zoom2_on(dep, capable_seds, config):
    """Register zoom2 only on ``capable_seds`` (a SeD refuses to launch
    with an empty table, so the rest get a dummy service)."""
    service = RamsesService(config)
    z2 = zoom2_profile_desc()
    for sed in dep.seds:
        if sed in capable_seds:
            sed.add_service(z2, service.solve_zoom2)
        else:
            sed.add_service(dummy_desc(), dummy_solve)
    return service


CKPT_CONFIG = RamsesServiceConfig(checkpoint_interval_work=600.0)


class TestHappyPath:
    def test_checkpointing_disabled_by_default(self):
        assert RamsesServiceConfig().checkpoint_interval_work is None

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            RamsesServiceConfig(checkpoint_interval_work=0.0)
        with pytest.raises(ValueError):
            RamsesServiceConfig(checkpoint_interval_work=-5.0)

    def _solve_once(self, config):
        dep = deploy()
        service = register_ramses_services(dep, config=config)
        dep.launch_all()
        client = dep.client
        profile = zoom2_profile()

        def run():
            client.initialize({"MA_name": "MA"})
            return (yield from client.call(profile))

        status = dep.engine.run_process(run())
        return status, dep.engine.now, service

    def test_no_failure_run_writes_checkpoints_only(self):
        status, elapsed_ckpt, service = self._solve_once(CKPT_CONFIG)
        assert status == 0
        stats = service.fault_stats
        assert stats.checkpoints_written > 0
        assert stats.restarts_from_checkpoint == 0
        assert stats.restarts_from_scratch == 0
        assert stats.work_lost == 0.0
        assert service._progress == {}  # record dropped on success

        status, elapsed_plain, service = self._solve_once(
            RamsesServiceConfig())
        assert status == 0
        assert service.fault_stats.checkpoints_written == 0
        # checkpoint writes cost NFS traffic, never save time happily
        assert elapsed_ckpt >= elapsed_plain


class TestCrashRecovery:
    def _run_with_crash(self, capable, crash_at=2000.0, downtime=300.0):
        """Crash the chosen SeD mid-solve; call_retry resubmits until a
        capable SeD (restarted or survivor) finishes the job."""
        dep = self.dep
        client = dep.client
        injector = FailureInjector(dep.engine)
        profile = zoom2_profile()
        outcome = {}

        def run():
            client.initialize({"MA_name": "MA"})
            handle = client.function_handle("ramsesZoom2")

            def crash_chosen():
                yield dep.engine.timeout(crash_at)
                outcome["victim"] = handle.server
                injector.schedule(dep.sed_by_name(handle.server),
                                  [Outage(at=0.0, duration=downtime)])

            dep.engine.process(crash_chosen())
            status = yield from client.call_retry(
                profile, handle, max_attempts=10, backoff=100.0)
            outcome["status"] = status
            outcome["served_by"] = handle.server

        dep.engine.run_until_complete(run())
        return outcome

    def test_same_cluster_resubmission_resumes_from_checkpoint(self):
        self.dep = deploy()
        only = self.dep.seds[0]
        service = register_zoom2_on(self.dep, [only], CKPT_CONFIG)
        self.dep.launch_all()

        outcome = self._run_with_crash([only])
        assert outcome["status"] == 0
        assert outcome["served_by"] == only.name  # nowhere else to go
        stats = service.fault_stats
        assert stats.restarts_from_checkpoint == 1
        assert stats.restarts_from_scratch == 0
        assert stats.work_recovered > 0.0
        assert stats.checkpoints_written > 0
        assert service._progress == {}

    def test_cross_cluster_resubmission_restarts_from_scratch(self):
        self.dep = deploy()
        sed_a = self.dep.seds[0]
        sed_b = next(s for s in self.dep.seds
                     if self.dep.cluster_of_sed(s.name)
                     != self.dep.cluster_of_sed(sed_a.name))
        service = register_zoom2_on(self.dep, [sed_a, sed_b], CKPT_CONFIG)
        self.dep.launch_all()

        # Long downtime: the retry must land on the other cluster's SeD.
        outcome = self._run_with_crash([sed_a, sed_b], downtime=50_000.0)
        assert outcome["status"] == 0
        assert outcome["served_by"] != outcome["victim"]
        stats = service.fault_stats
        assert stats.restarts_from_scratch == 1
        assert stats.restarts_from_checkpoint == 0
        assert stats.work_recovered == 0.0
        # the pre-crash segments were durable but unreachable: lost
        assert stats.work_lost > 0.0

    def test_without_checkpointing_resubmission_loses_everything(self):
        self.dep = deploy()
        only = self.dep.seds[0]
        service = register_zoom2_on(
            self.dep, [only], RamsesServiceConfig())
        self.dep.launch_all()

        outcome = self._run_with_crash([only])
        assert outcome["status"] == 0
        stats = service.fault_stats
        assert stats.checkpoints_written == 0
        assert stats.restarts_from_checkpoint == 0
        assert stats.work_recovered == 0.0
