"""Unit tests for the campaign workflow (small configurations)."""

import pytest

from repro.platform import ClusterSpec
from repro.services import (
    CampaignConfig,
    run_campaign,
    synthetic_zoom_centers,
)


class TestSyntheticCenters:
    def test_deterministic(self):
        assert synthetic_zoom_centers(5, 7) == synthetic_zoom_centers(5, 7)

    def test_in_unit_box(self):
        for c in synthetic_zoom_centers(20, 1):
            assert all(0 <= v < 1 for v in c)

    def test_seed_sensitivity(self):
        assert synthetic_zoom_centers(5, 1) != synthetic_zoom_centers(5, 2)


class TestSmallCampaigns:
    def test_small_campaign_counts(self):
        result = run_campaign(CampaignConfig(n_sub_simulations=7))
        assert len(result.part2_traces) == 7
        assert len(result.zoom_centers) == 7
        assert all(t.status == 0 for t in result.part2_traces)

    def test_distribution_small_burst(self):
        """7 requests over 11 SeDs: each goes to a distinct SeD."""
        result = run_campaign(CampaignConfig(n_sub_simulations=7))
        counts = result.requests_per_sed()
        assert sorted(counts.values()) == [1] * 7

    def test_custom_cluster_layout(self):
        specs = (
            ClusterSpec("s1", "fast", "opteron-252", 48, n_seds=2),
            ClusterSpec("s2", "slow", "opteron-246", 48, n_seds=2),
        )
        result = run_campaign(CampaignConfig(n_sub_simulations=8,
                                             cluster_specs=specs))
        assert len(result.deployment.seds) == 4
        busy = result.busy_time_per_sed()
        # the slow cluster is busier for the same request count
        slow = [b for s, b in busy.items() if "slow" in s]
        fast = [b for s, b in busy.items() if "fast" in s]
        assert min(slow) > max(fast) * 1.1

    def test_policy_switch_changes_distribution(self):
        default = run_campaign(CampaignConfig(n_sub_simulations=40))
        mct = run_campaign(CampaignConfig(n_sub_simulations=40,
                                          policy="mct", with_predictor=True))
        assert (max(mct.requests_per_sed().values())
                > max(default.requests_per_sed().values()) - 1)
        assert mct.total_elapsed <= default.total_elapsed * 1.05

    def test_random_policy_runs(self):
        result = run_campaign(CampaignConfig(n_sub_simulations=10,
                                             policy="random"))
        assert len(result.part2_traces) == 10

    def test_deterministic_given_seed(self):
        a = run_campaign(CampaignConfig(n_sub_simulations=5))
        b = run_campaign(CampaignConfig(n_sub_simulations=5))
        assert a.total_elapsed == b.total_elapsed
        assert a.requests_per_sed() == b.requests_per_sed()

    def test_zoom_level_count_affects_duration(self):
        shallow = run_campaign(CampaignConfig(n_sub_simulations=5,
                                              n_zoom_levels=1))
        deep = run_campaign(CampaignConfig(n_sub_simulations=5,
                                           n_zoom_levels=4))
        assert deep.part2_mean_duration > shallow.part2_mean_duration


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(CampaignConfig(n_sub_simulations=12))

    def test_gantt_covers_all_requests(self, result):
        spans = sum(len(v) for v in result.gantt().values())
        assert spans == 12

    def test_overhead_list_length(self, result):
        assert len(result.overhead_per_request) == 12

    def test_sequential_exceeds_parallel(self, result):
        assert result.sequential_estimate > result.total_elapsed
        assert result.speedup > 1.0

    def test_finding_times_include_part1(self, result):
        assert len(result.finding_times()) == 13
