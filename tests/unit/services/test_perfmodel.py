"""Unit tests for the calibrated performance model."""

import numpy as np
import pytest

from repro.services import (
    PAPER_PART1_SECONDS,
    PAPER_PART2_MEAN_SECONDS,
    RamsesPerfModel,
)


@pytest.fixture(scope="module")
def model():
    return RamsesPerfModel()


class TestCalibration:
    def test_part1_target_on_first_sed(self, model):
        """Work / 2.0 GHz + NFS time == 1h15m11s on lyon-capricorne."""
        total = model.part1_work(128) / 2.0 + model.nfs_seconds(128)
        assert total == pytest.approx(PAPER_PART1_SECONDS, rel=1e-9)

    def test_part2_canonical_sample_mean(self, model):
        """Mean over the canonical campaign's 100 draws == 1h24m01s."""
        mean_inv_speed = (2 / 2.0 + 1 / 2.4 + 2 / 2.2 + 2 / 2.6
                          + 2 / 1.82 + 2 / 2.2) / 11.0
        works = [model.part2_work(128, 2, i) for i in range(2, 102)]
        mean_seconds = np.mean(works) * mean_inv_speed + model.nfs_seconds(128)
        assert mean_seconds == pytest.approx(PAPER_PART2_MEAN_SECONDS, rel=1e-6)

    def test_zoom_costs_more_than_single_level(self, model):
        assert model.zoom_overhead_factor > 1.0


class TestScaling:
    def test_part1_scales_with_particle_count(self, model):
        # N^3 scaling: doubling resolution costs 8x
        assert (model.part1_work(64) / model.part1_work(32)
                == pytest.approx(8.0))

    def test_part2_deeper_zoom_costs_more(self, model):
        w1 = model.part2_work(64, 1, request_index=5)
        w3 = model.part2_work(64, 3, request_index=5)
        assert w3 > w1

    def test_noise_deterministic_per_index(self, model):
        a = model.part2_work(128, 2, request_index=7)
        b = RamsesPerfModel().part2_work(128, 2, request_index=7)
        assert a == b

    def test_noise_varies_between_indices(self, model):
        draws = {model.part2_work(128, 2, i) for i in range(20)}
        assert len(draws) == 20

    def test_noise_scatter_matches_sigma(self, model):
        works = np.array([model.part2_work(128, 2, i) for i in range(500)])
        cv = works.std() / works.mean()
        assert cv == pytest.approx(model.sigma, rel=0.25)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.part1_work(1)
        with pytest.raises(ValueError):
            model.part2_work(64, -1)


class TestDataSizes:
    def test_tarball_megabytes(self, model):
        nbytes = model.result_tarball_bytes(128)
        assert 1e6 < nbytes < 1e8

    def test_snapshot_volume_scales(self, model):
        assert (model.snapshot_bytes(128) / model.snapshot_bytes(64)
                == pytest.approx(8.0))

    def test_nfs_seconds_positive(self, model):
        assert 0 < model.nfs_seconds(128) < 120
