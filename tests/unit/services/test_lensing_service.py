"""Unit tests for the survey pipeline services
(repro.services.lensing_service)."""

import numpy as np
import pytest

from repro.core.data import FileRef, PersistenceMode
from repro.services.lensing_service import (
    Z_SOURCE_SCALE,
    LensingService,
    LensingServiceConfig,
    lensing_convergence_desc,
    survey_ic_desc,
    survey_reduce_desc,
    survey_result_modes,
    survey_run_desc,
)
from repro.services.ramses_service import ExecutionMode
from repro.sim.engine import Engine
from repro.survey.grid import CosmologyPoint
from repro.survey.lensing import born_convergence
from repro.survey.pipeline import build_survey_dag


class _Ctx:
    """Minimal SolveContext stand-in: free CPU, no NFS volume."""

    def __init__(self, engine):
        self.engine = engine
        self.nfs = None

    def execute(self, work):
        yield self.engine.timeout(0.0)


def _solve(engine, gen):
    state = {}

    def drive():
        state["status"] = yield from gen

    engine.run_until_complete(drive())
    return state["status"]


class TestDescs:
    def test_matching_ignores_result_persistence(self):
        volatile = survey_ic_desc(PersistenceMode.VOLATILE)
        persistent = survey_ic_desc(PersistenceMode.PERSISTENT)
        assert volatile.matches(persistent)

    def test_result_modes_follow_the_campaign_policy(self):
        assert survey_result_modes("volatile") == (
            PersistenceMode.VOLATILE, PersistenceMode.VOLATILE)
        inter, final = survey_result_modes("persistent")
        assert inter is PersistenceMode.PERSISTENT
        assert final is PersistenceMode.PERSISTENT_RETURN
        assert survey_result_modes("replicated") == (inter, final)

    def test_error_int_persists_with_the_result(self):
        """Memoization needs every OUT argument to keep a server copy."""
        desc = survey_run_desc(PersistenceMode.PERSISTENT)
        assert desc.args[4].persistence is PersistenceMode.PERSISTENT_RETURN
        volatile = survey_run_desc(PersistenceMode.VOLATILE)
        assert volatile.args[4].persistence is PersistenceMode.VOLATILE


def _ic_profile(point, resolution=16, seed=3,
                mode=PersistenceMode.VOLATILE):
    profile = survey_ic_desc(mode).instantiate()
    profile.parameter(0).set(FileRef.from_text("cosmo.ini",
                                               point.cosmology_text()))
    profile.parameter(1).set(resolution)
    profile.parameter(2).set(seed)
    profile.parameter(3).set(None)
    profile.parameter(4).set(None)
    return profile


class TestModeledSolves:
    def test_ic_product_path_is_input_stamped(self):
        """Distinct cosmologies must never alias in the memo key space:
        the product FileRef path embeds an input-derived stamp."""
        engine = Engine()
        service = LensingService()
        ctx = _Ctx(engine)
        p1 = _ic_profile(CosmologyPoint(omega_m=0.24))
        p2 = _ic_profile(CosmologyPoint(omega_m=0.30))
        assert _solve(engine, service.solve_ic(p1, ctx)) == 0
        assert _solve(engine, service.solve_ic(p2, ctx)) == 0
        ref1, ref2 = p1.parameter(3).get(), p2.parameter(3).get()
        assert ref1.path != ref2.path
        assert p1.parameter(4).get() == 0

    def test_identical_requests_produce_identical_products(self):
        engine = Engine()
        service = LensingService()
        ctx = _Ctx(engine)
        point = CosmologyPoint()
        p1, p2 = _ic_profile(point), _ic_profile(point)
        _solve(engine, service.solve_ic(p1, ctx))
        _solve(engine, service.solve_ic(p2, ctx))
        assert p1.parameter(3).get() == p2.parameter(3).get()

    def test_modeled_sizes_follow_the_perfmodel(self):
        engine = Engine()
        service = LensingService()
        profile = _ic_profile(CosmologyPoint(), resolution=16)
        _solve(engine, service.solve_ic(profile, _Ctx(engine)))
        assert profile.parameter(3).get().nbytes == \
            service.config.perf.ic_bytes(16)


class TestRealPipeline:
    def test_real_chain_matches_the_numpy_kernels(self, tmp_path):
        """REAL mode end to end: IC -> slabs -> convergence must equal a
        direct call of the lensing kernels on the produced slab file."""
        engine = Engine()
        service = LensingService(LensingServiceConfig(
            mode=ExecutionMode.REAL, workdir=str(tmp_path), seed=5))
        ctx = _Ctx(engine)
        point = CosmologyPoint(omega_m=0.28, sigma8=0.82)
        resolution, n_planes, z_source = 16, 4, 1.0

        ic = _ic_profile(point, resolution=resolution)
        assert _solve(engine, service.solve_ic(ic, ctx)) == 0
        ic_ref = ic.parameter(3).get()
        assert "realization =" in ic_ref.content

        run = survey_run_desc().instantiate()
        run.parameter(0).set(ic_ref)
        run.parameter(1).set(resolution)
        run.parameter(2).set(n_planes)
        run.parameter(3).set(None)
        run.parameter(4).set(None)
        assert _solve(engine, service.solve_run(run, ctx)) == 0
        slab_ref = run.parameter(3).get()
        slabs = np.load(slab_ref.local_path)
        assert slabs.shape == (n_planes, resolution, resolution)

        lens = lensing_convergence_desc().instantiate()
        lens.parameter(0).set(slab_ref)
        lens.parameter(1).set(FileRef.from_text("cosmo.ini",
                                                point.cosmology_text()))
        lens.parameter(2).set(resolution)
        lens.parameter(3).set(n_planes)
        lens.parameter(4).set(int(round(z_source * Z_SOURCE_SCALE)))
        lens.parameter(5).set(None)
        lens.parameter(6).set(None)
        assert _solve(engine, service.solve_lensing(lens, ctx)) == 0
        kappa = np.load(lens.parameter(5).get().local_path)
        expected = born_convergence(slabs, z_source, point.h0,
                                    point.omega_m, point.w0)
        np.testing.assert_allclose(kappa, expected, rtol=1e-6)

    def test_real_reduce_is_the_weighted_mean(self, tmp_path):
        engine = Engine()
        service = LensingService(LensingServiceConfig(
            mode=ExecutionMode.REAL, workdir=str(tmp_path)))
        ctx = _Ctx(engine)
        a = np.full((4, 4), 1.0)
        b = np.full((4, 4), 3.0)
        path_a, path_b = tmp_path / "a.npy", tmp_path / "b.npy"
        np.save(path_a, a)
        np.save(path_b, b)
        profile = survey_reduce_desc().instantiate()
        profile.parameter(0).set(FileRef(path="a.npy", nbytes=64,
                                         local_path=str(path_a)))
        profile.parameter(1).set(FileRef(path="b.npy", nbytes=64,
                                         local_path=str(path_b)))
        profile.parameter(2).set(1)
        profile.parameter(3).set(3)
        profile.parameter(4).set(4)
        profile.parameter(5).set(None)
        profile.parameter(6).set(None)
        assert _solve(engine, service.solve_reduce(profile, ctx)) == 0
        stacked = np.load(profile.parameter(5).get().local_path)
        np.testing.assert_allclose(stacked, 2.5)

    def test_real_mode_requires_a_workdir(self):
        with pytest.raises(ValueError):
            LensingServiceConfig(mode=ExecutionMode.REAL)


class TestPipelineBuilder:
    def test_dag_shape_for_a_2x2_grid(self):
        from repro.survey.grid import ParameterGrid

        grid = ParameterGrid.cartesian({
            "omega_m": (0.24, 0.26), "sigma8": (0.75, 0.8)})
        dag = build_survey_dag(grid, with_reduce=True)
        # 4 chains of 3 + a 3-node reduction tree with one diamond join.
        assert len(dag) == 15
        assert len(dag.leaves()) == 1
        assert dag.stages() == ["ic", "run", "lensing", "reduce"]

    def test_single_point_needs_no_reduce(self):
        dag = build_survey_dag([CosmologyPoint()])
        assert len(dag) == 3
