"""Unit tests for halo/galaxy catalogs and their on-disk format."""

import numpy as np
import pytest

from repro.galics import (
    Galaxy,
    GalaxyCatalog,
    Halo,
    HaloCatalog,
    read_halo_catalog,
    write_halo_catalog,
)


def halo(hid, n, mass):
    return Halo(halo_id=hid, center=np.array([0.1 * hid, 0.2, 0.3]),
                mass=mass, velocity=np.array([1.0, -2.0, 0.5]),
                n_particles=n, radius=0.05,
                member_ids=np.arange(hid * 1000, hid * 1000 + n))


class TestHaloCatalog:
    def test_sorted_by_mass(self):
        cat = HaloCatalog(1.0, [halo(0, 10, 0.1), halo(1, 30, 0.3),
                                halo(2, 20, 0.2)])
        assert [h.halo_id for h in cat] == [1, 2, 0]

    def test_by_id(self):
        cat = HaloCatalog(1.0, [halo(0, 10, 0.1), halo(1, 20, 0.2)])
        assert cat.by_id(0).n_particles == 10
        with pytest.raises(KeyError):
            cat.by_id(99)

    def test_member_count_validation(self):
        with pytest.raises(ValueError):
            Halo(halo_id=0, center=np.zeros(3), mass=1.0,
                 velocity=np.zeros(3), n_particles=5, radius=0.1,
                 member_ids=np.arange(3))

    def test_masses_array(self):
        cat = HaloCatalog(1.0, [halo(0, 10, 0.1), halo(1, 30, 0.3)])
        assert np.allclose(cat.masses(), [0.3, 0.1])

    def test_mass_function_counts(self):
        cat = HaloCatalog(1.0, [halo(i, 10, 0.1 * (i + 1)) for i in range(6)])
        _, counts = cat.mass_function(n_bins=3)
        assert counts.sum() == 6

    def test_empty_mass_function(self):
        centres, counts = HaloCatalog(1.0, []).mass_function()
        assert len(centres) == 0 and len(counts) == 0


class TestHaloCatalogIO:
    def test_roundtrip(self, tmp_path):
        cat = HaloCatalog(0.5, [halo(0, 12, 0.25), halo(1, 7, 0.1)])
        path = str(tmp_path / "tree_brick.dat")
        write_halo_catalog(path, cat)
        back = read_halo_catalog(path)
        assert back.aexp == pytest.approx(0.5)
        assert len(back) == 2
        for orig, loaded in zip(cat, back):
            assert loaded.halo_id == orig.halo_id
            assert loaded.mass == pytest.approx(orig.mass)
            assert np.allclose(loaded.center, orig.center)
            assert np.allclose(loaded.velocity, orig.velocity)
            assert np.array_equal(loaded.member_ids, orig.member_ids)

    def test_empty_catalog_roundtrip(self, tmp_path):
        path = str(tmp_path / "empty.dat")
        write_halo_catalog(path, HaloCatalog(1.0, []))
        assert len(read_halo_catalog(path)) == 0


class TestGalaxyCatalog:
    def galaxy(self, gid, stellar, bulge=0.0):
        return Galaxy(galaxy_id=gid, halo_id=gid, stellar_mass=stellar,
                      cold_gas=0.01, hot_gas=0.02, bulge_mass=bulge,
                      sfr=0.001, position=np.array([0.5, 0.5, 0.5]))

    def test_totals(self):
        cat = GalaxyCatalog(1.0, [self.galaxy(0, 0.1), self.galaxy(1, 0.2)])
        assert cat.total_stellar_mass() == pytest.approx(0.3)
        assert len(cat) == 2

    def test_morphology_accessors(self):
        g = self.galaxy(0, 0.4, bulge=0.1)
        assert g.disk_mass == pytest.approx(0.3)
        assert g.bulge_fraction == pytest.approx(0.25)

    def test_zero_mass_bulge_fraction(self):
        assert self.galaxy(0, 0.0).bulge_fraction == 0.0

    def test_empty_catalog(self):
        assert GalaxyCatalog(1.0, []).total_stellar_mass() == 0.0
