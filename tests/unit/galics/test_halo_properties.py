"""Unit + physics tests for spherical-overdensity halo properties."""

import numpy as np
import pytest

from repro.galics import find_halos
from repro.galics.halo_properties import (
    velocity_dispersion,
    virial_properties,
)
from repro.grafic import make_single_level_ic
from repro.ramses import LCDM_WMAP, ParticleSet, RamsesRun, RunConfig


def dense_blob(n_blob=400, n_field=600, scale=0.004, seed=0):
    rng = np.random.default_rng(seed)
    blob = np.mod(0.5 + scale * rng.standard_normal((n_blob, 3)), 1.0)
    field = rng.random((n_field, 3))
    x = np.vstack([blob, field])
    n = len(x)
    parts = ParticleSet(x, np.zeros((n, 3)), np.full(n, 1.0 / n),
                        np.arange(n, dtype=np.int64),
                        np.zeros(n, dtype=np.int16))
    return parts


class TestVelocityDispersion:
    def test_zero_for_cold_set(self):
        parts = dense_blob()
        assert velocity_dispersion(parts, np.arange(100), 1.0) == 0.0

    def test_known_dispersion(self):
        parts = dense_blob()
        rng = np.random.default_rng(1)
        parts.p[:] = rng.normal(0.0, 0.5, parts.p.shape)   # sigma_p = 0.5
        sigma = velocity_dispersion(parts, np.arange(len(parts)), 1.0)
        assert sigma == pytest.approx(0.5, rel=0.05)

    def test_bulk_motion_removed(self):
        parts = dense_blob()
        parts.p[:] = 3.0   # pure bulk flow
        assert velocity_dispersion(parts, np.arange(50), 1.0) == pytest.approx(0.0)

    def test_a_scaling(self):
        parts = dense_blob()
        rng = np.random.default_rng(2)
        parts.p[:] = rng.normal(0.0, 1.0, parts.p.shape)
        s1 = velocity_dispersion(parts, np.arange(100), 1.0)
        s05 = velocity_dispersion(parts, np.arange(100), 0.5)
        assert s05 == pytest.approx(2 * s1, rel=1e-9)

    def test_empty_members_raise(self):
        with pytest.raises(ValueError):
            velocity_dispersion(dense_blob(), np.array([], dtype=int), 1.0)


class TestVirialProperties:
    def test_blob_recovers_overdense_sphere(self):
        parts = dense_blob()
        catalog = find_halos(parts, aexp=1.0, min_particles=50)
        halo = catalog[0]
        props = virial_properties(halo, parts, aexp=1.0)
        assert props is not None
        # the 400-particle blob dominates M200
        assert props.n200 >= 300
        assert props.m200 == pytest.approx(props.n200 / len(parts))
        # enclosed density at R200 is exactly the threshold (by construction
        # of the walk it is the last radius above it)
        mean_ratio = props.m200 / (4 / 3 * np.pi * props.r200 ** 3)
        assert mean_ratio >= 200.0

    def test_half_mass_radius_inside_r200(self):
        parts = dense_blob()
        halo = find_halos(parts, aexp=1.0, min_particles=50)[0]
        props = virial_properties(halo, parts, aexp=1.0)
        assert 0 < props.r_half < props.r200
        assert 0 < props.concentration_proxy < 1

    def test_uniform_field_returns_none(self):
        rng = np.random.default_rng(3)
        x = rng.random((500, 3))
        parts = ParticleSet(x, np.zeros_like(x), np.full(500, 1 / 500),
                            np.arange(500, dtype=np.int64),
                            np.zeros(500, dtype=np.int16))
        from repro.galics.catalogs import Halo
        fake = Halo(halo_id=0, center=np.array([0.5, 0.5, 0.5]), mass=0.1,
                    velocity=np.zeros(3), n_particles=10, radius=0.1,
                    member_ids=np.arange(10))
        assert virial_properties(fake, parts, aexp=1.0) is None

    def test_on_real_simulation_halo(self):
        """M200 of the biggest simulated halo is of order its FoF mass."""
        ic = make_single_level_ic(16, 50.0, LCDM_WMAP, a_start=0.05, seed=11)
        snap = RamsesRun(ic, RunConfig(a_end=1.0, n_steps=20,
                                       output_aexp=(1.0,))).run().final
        catalog = find_halos(snap.particles, snap.aexp, min_particles=8)
        halo = catalog[0]
        props = virial_properties(halo, snap.particles, snap.aexp)
        assert props is not None
        assert 0.2 * halo.mass < props.m200 < 5.0 * halo.mass
        assert props.sigma_v > 0
