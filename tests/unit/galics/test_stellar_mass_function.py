"""Science checks on the SAM's population statistics."""

import numpy as np
import pytest

from repro.galics import GalaxyMaker, build_merger_tree, find_halos
from repro.grafic import make_single_level_ic
from repro.ramses import LCDM_WMAP, RamsesRun, RunConfig


@pytest.fixture(scope="module")
def population():
    ic = make_single_level_ic(32, 100.0, LCDM_WMAP, a_start=0.05, seed=42)
    cfg = RunConfig(a_end=1.0, n_steps=32, output_aexp=(0.4, 0.6, 0.8, 1.0))
    result = RamsesRun(ic, cfg).run()
    catalogs = [find_halos(s.particles, s.aexp) for s in result.snapshots]
    nonempty = [c for c in catalogs if len(c)]
    tree = build_merger_tree(nonempty)
    galaxy_catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
    return nonempty, galaxy_catalogs


class TestStellarMassFunction:
    def test_smf_declines_with_mass(self, population):
        """More faint galaxies than bright ones (the SMF's overall shape)."""
        _, galaxy_catalogs = population
        masses = galaxy_catalogs[-1].stellar_masses()
        masses = masses[masses > 0]
        median = np.median(masses)
        assert (masses < median * 3).sum() > (masses > median * 3).sum()

    def test_stellar_mass_tracks_halo_mass(self, population):
        """Bigger halos host bigger galaxies (monotone on average)."""
        halo_catalogs, galaxy_catalogs = population
        halos = {h.halo_id: h.mass for h in halo_catalogs[-1]}
        pairs = [(halos[g.halo_id], g.stellar_mass)
                 for g in galaxy_catalogs[-1] if g.stellar_mass > 0]
        pairs.sort()
        halo_masses = np.array([p[0] for p in pairs])
        stellar = np.array([p[1] for p in pairs])
        # Spearman-ish: rank correlation positive and strong
        ranks_h = np.argsort(np.argsort(halo_masses))
        ranks_s = np.argsort(np.argsort(stellar))
        corr = np.corrcoef(ranks_h, ranks_s)[0, 1]
        assert corr > 0.5

    def test_star_formation_efficiency_below_baryon_budget(self, population):
        """Global stellar fraction < baryon fraction (feedback regulated)."""
        halo_catalogs, galaxy_catalogs = population
        total_stars = galaxy_catalogs[-1].total_stellar_mass()
        total_halo = sum(h.mass for h in halo_catalogs[-1])
        assert 0 < total_stars < 0.15 * total_halo

    def test_population_grows_with_time(self, population):
        _, galaxy_catalogs = population
        counts = [len(c) for c in galaxy_catalogs]
        assert counts[-1] >= counts[0]
