"""Unit tests for the FoF halo finder."""

import numpy as np
import pytest

from repro.galics import find_halos, friends_of_friends, periodic_center
from repro.ramses import ParticleSet


def blob(center, n, scale, rng):
    return np.mod(np.asarray(center) + scale * rng.standard_normal((n, 3)), 1.0)


def make_parts(x):
    n = len(x)
    return ParticleSet(x, np.zeros_like(x), np.full(n, 1.0 / n),
                       np.arange(n, dtype=np.int64),
                       np.zeros(n, dtype=np.int16))


class TestPeriodicCenter:
    def test_simple_mean(self):
        x = np.array([[0.4, 0.4, 0.4], [0.6, 0.6, 0.6]])
        assert np.allclose(periodic_center(x), [0.5, 0.5, 0.5])

    def test_wraparound_mean(self):
        x = np.array([[0.95, 0.5, 0.5], [0.05, 0.5, 0.5]])
        c = periodic_center(x)
        assert min(c[0], 1 - c[0]) < 0.01   # centre near the seam, not 0.5

    def test_weighted(self):
        x = np.array([[0.2, 0.5, 0.5], [0.4, 0.5, 0.5]])
        c = periodic_center(x, weights=np.array([3.0, 1.0]))
        assert c[0] < 0.3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            periodic_center(np.empty((0, 3)))


class TestFoF:
    def test_two_separated_blobs(self):
        rng = np.random.default_rng(0)
        x = np.vstack([blob([0.25] * 3, 50, 0.005, rng),
                       blob([0.75] * 3, 50, 0.005, rng)])
        labels = friends_of_friends(x, 0.05)
        assert len(np.unique(labels)) == 2
        assert len(np.unique(labels[:50])) == 1
        assert len(np.unique(labels[50:])) == 1

    def test_isolated_points_singletons(self):
        x = np.array([[0.1, 0.1, 0.1], [0.5, 0.5, 0.5], [0.9, 0.9, 0.9]])
        labels = friends_of_friends(x, 0.01)
        assert len(np.unique(labels)) == 3

    def test_periodic_linking(self):
        """Particles across the box seam belong to the same group."""
        x = np.array([[0.001, 0.5, 0.5], [0.999, 0.5, 0.5]])
        labels = friends_of_friends(x, 0.01)
        assert labels[0] == labels[1]

    def test_chain_percolation(self):
        """FoF links transitively along a chain of close particles."""
        x = np.column_stack([np.linspace(0.3, 0.5, 21),
                             np.full(21, 0.5), np.full(21, 0.5)])
        labels = friends_of_friends(x, 0.011)
        assert len(np.unique(labels)) == 1

    def test_labels_partition(self):
        rng = np.random.default_rng(1)
        x = rng.random((500, 3))
        labels = friends_of_friends(x, 0.02)
        assert labels.shape == (500,)
        assert labels.min() >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((2, 2)), 0.1)
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((2, 3)), 0.6)

    def test_empty(self):
        assert len(friends_of_friends(np.empty((0, 3)), 0.1)) == 0


class TestFindHalos:
    def test_catalog_from_blobs(self):
        rng = np.random.default_rng(2)
        x = np.vstack([blob([0.3] * 3, 100, 0.002, rng),
                       blob([0.7] * 3, 40, 0.002, rng),
                       rng.random((60, 3))])   # field particles
        parts = make_parts(x)
        catalog = find_halos(parts, aexp=1.0, b=0.2, min_particles=20)
        assert len(catalog) == 2
        # sorted by decreasing mass
        assert catalog[0].n_particles == 100
        assert catalog[1].n_particles == 40
        assert np.allclose(catalog[0].center, 0.3, atol=0.01)

    def test_min_particles_filter(self):
        rng = np.random.default_rng(3)
        x = np.vstack([blob([0.5] * 3, 30, 0.002, rng),
                       blob([0.2] * 3, 5, 0.002, rng)])
        catalog = find_halos(make_parts(x), aexp=1.0, min_particles=10)
        assert len(catalog) == 1

    def test_member_ids_sorted_and_valid(self):
        rng = np.random.default_rng(4)
        x = blob([0.5] * 3, 50, 0.002, rng)
        parts = make_parts(x)
        catalog = find_halos(parts, aexp=1.0, min_particles=10)
        ids = catalog[0].member_ids
        assert np.array_equal(ids, np.sort(ids))
        assert set(ids) <= set(parts.ids)

    def test_velocity_is_mass_weighted_mean(self):
        rng = np.random.default_rng(5)
        x = blob([0.5] * 3, 50, 0.002, rng)
        parts = make_parts(x)
        parts.p[:] = 2.0
        catalog = find_halos(parts, aexp=0.5, min_particles=10)
        # v = p / a = 4.0
        assert np.allclose(catalog[0].velocity, 4.0)

    def test_zoom_links_at_fine_resolution(self):
        """Mixed-mass sets use the finest species' mean separation."""
        rng = np.random.default_rng(6)
        fine = blob([0.5] * 3, 200, 0.001, rng)
        x = np.vstack([fine, rng.random((20, 3))])
        mass = np.concatenate([np.full(200, 1.0 / 8), np.full(20, 1.0)])
        parts = ParticleSet(x, np.zeros_like(x), mass / mass.sum(),
                            np.arange(220, dtype=np.int64),
                            np.zeros(220, dtype=np.int16))
        catalog = find_halos(parts, aexp=1.0, min_particles=50)
        assert len(catalog) >= 1

    def test_empty_particles(self):
        catalog = find_halos(ParticleSet.empty(), aexp=1.0)
        assert len(catalog) == 0

    def test_mass_function(self):
        rng = np.random.default_rng(7)
        x = np.vstack([blob([0.2] * 3, 80, 0.002, rng),
                       blob([0.8] * 3, 20, 0.002, rng)])
        catalog = find_halos(make_parts(x), aexp=1.0, min_particles=10)
        centres, counts = catalog.mass_function(n_bins=4)
        assert counts.sum() == len(catalog)
