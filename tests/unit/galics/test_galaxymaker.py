"""Unit tests for the semi-analytic galaxy model."""

import numpy as np
import pytest

from repro.galics import (
    Halo,
    HaloCatalog,
    GalaxyMaker,
    SamParams,
    TreeNode,
    build_merger_tree,
)
from repro.ramses import LCDM_WMAP


def halo(hid, ids, mass):
    ids = np.asarray(ids, dtype=np.int64)
    return Halo(halo_id=hid, center=np.array([0.5, 0.5, 0.5]), mass=mass,
                velocity=np.zeros(3), n_particles=len(ids), radius=0.01,
                member_ids=ids)


def growing_history():
    """One halo growing smoothly over four snapshots."""
    cats = []
    for i, (aexp, n) in enumerate([(0.3, 20), (0.5, 40), (0.7, 70), (1.0, 100)]):
        cats.append(HaloCatalog(aexp, [halo(0, range(n), mass=n / 1000.0)]))
    return cats


def merging_history():
    cat0 = HaloCatalog(0.4, [halo(0, range(0, 50), 0.05),
                             halo(1, range(50, 90), 0.04)])
    cat1 = HaloCatalog(1.0, [halo(0, range(0, 90), 0.09)])
    return [cat0, cat1]


class TestSamParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamParams(baryon_fraction=1.5)
        with pytest.raises(ValueError):
            SamParams(feedback_efficiency=-0.1)


class TestGalaxyMaker:
    def test_one_catalog_per_snapshot(self):
        tree = build_merger_tree(growing_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        assert len(catalogs) == 4
        assert all(len(c) == 1 for c in catalogs)

    def test_stellar_mass_grows(self):
        tree = build_merger_tree(growing_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        masses = [c.total_stellar_mass() for c in catalogs]
        assert all(m2 > m1 for m1, m2 in zip(masses[:-1], masses[1:]))

    def test_baryon_budget_respected(self):
        """Stars + gas never exceed the accreted baryon budget."""
        tree = build_merger_tree(growing_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        final_halo_mass = tree.catalogs[-1][0].mass
        g = catalogs[-1].galaxies[0]
        budget = SamParams().baryon_fraction * final_halo_mass
        assert g.stellar_mass + g.cold_gas + g.hot_gas <= budget * (1 + 1e-9)

    def test_all_components_nonnegative(self):
        tree = build_merger_tree(merging_history())
        for cat in GalaxyMaker(LCDM_WMAP).run(tree):
            for g in cat:
                assert g.stellar_mass >= 0
                assert g.cold_gas >= 0
                assert g.hot_gas >= 0
                assert 0 <= g.bulge_fraction <= 1

    def test_major_merger_builds_bulge(self):
        """A ~1:1 merger moves the stars into the bulge."""
        tree = build_merger_tree(merging_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        merged = catalogs[1].galaxies[0]
        assert merged.bulge_mass > 0

    def test_no_merger_no_bulge(self):
        tree = build_merger_tree(growing_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        assert catalogs[-1].galaxies[0].bulge_mass == 0.0

    def test_merger_conserves_stars(self):
        """Stars of both progenitors survive the merger (plus new SF)."""
        tree = build_merger_tree(merging_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        pre = catalogs[0].total_stellar_mass()
        post = catalogs[1].total_stellar_mass()
        assert post >= pre

    def test_higher_sf_efficiency_more_stars(self):
        tree = build_merger_tree(growing_history())
        low = GalaxyMaker(LCDM_WMAP, SamParams(star_formation_efficiency=0.02))
        high = GalaxyMaker(LCDM_WMAP, SamParams(star_formation_efficiency=0.4))
        m_low = low.run(tree)[-1].total_stellar_mass()
        m_high = high.run(tree)[-1].total_stellar_mass()
        assert m_high > m_low

    def test_feedback_suppresses_stars_in_small_halos(self):
        tree = build_merger_tree(growing_history())
        none = GalaxyMaker(LCDM_WMAP, SamParams(feedback_efficiency=0.0))
        strong = GalaxyMaker(LCDM_WMAP, SamParams(feedback_efficiency=1.0))
        assert (strong.run(tree)[-1].total_stellar_mass()
                < none.run(tree)[-1].total_stellar_mass())

    def test_galaxy_positions_track_halos(self):
        tree = build_merger_tree(growing_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        g = catalogs[-1].galaxies[0]
        assert np.allclose(g.position, [0.5, 0.5, 0.5])

    def test_sfr_positive_while_growing(self):
        tree = build_merger_tree(growing_history())
        catalogs = GalaxyMaker(LCDM_WMAP).run(tree)
        assert catalogs[-1].galaxies[0].sfr > 0
