"""Unit tests for the merger-tree builder."""

import networkx as nx
import numpy as np
import pytest

from repro.galics import Halo, HaloCatalog, TreeNode, build_merger_tree, match_halos


def halo(hid, ids, mass=None):
    ids = np.asarray(ids, dtype=np.int64)
    return Halo(halo_id=hid, center=np.array([0.5, 0.5, 0.5]),
                mass=mass if mass is not None else len(ids) / 100.0,
                velocity=np.zeros(3), n_particles=len(ids),
                radius=0.01, member_ids=ids)


class TestMatchHalos:
    def test_full_overlap(self):
        earlier = HaloCatalog(0.5, [halo(0, range(10))])
        later = HaloCatalog(1.0, [halo(0, range(10))])
        links = match_halos(earlier, later)
        assert links == [(0, 0, 1.0)]

    def test_split_overlap(self):
        earlier = HaloCatalog(0.5, [halo(0, range(10))])
        later = HaloCatalog(1.0, [halo(0, range(6)), halo(1, range(6, 10))])
        links = sorted(match_halos(earlier, later))
        assert links == [(0, 0, 0.6), (0, 1, 0.4)]

    def test_no_overlap(self):
        earlier = HaloCatalog(0.5, [halo(0, range(10))])
        later = HaloCatalog(1.0, [halo(0, range(100, 110))])
        assert match_halos(earlier, later) == []

    def test_empty_catalogs(self):
        assert match_halos(HaloCatalog(0.5, []), HaloCatalog(1.0, [])) == []


class TestBuildTree:
    def three_snapshot_history(self):
        """Two halos at a=0.3 merge into one by a=0.6, which grows to a=1."""
        cat0 = HaloCatalog(0.3, [halo(0, range(0, 30), mass=0.3),
                                 halo(1, range(30, 50), mass=0.2)])
        cat1 = HaloCatalog(0.6, [halo(0, range(0, 50), mass=0.5)])
        cat2 = HaloCatalog(1.0, [halo(0, range(0, 60), mass=0.6)])
        return [cat0, cat1, cat2]

    def test_acyclic_forward_edges(self):
        tree = build_merger_tree(self.three_snapshot_history())
        assert nx.is_directed_acyclic_graph(tree.graph)
        for u, v in tree.graph.edges:
            assert v.snapshot == u.snapshot + 1

    def test_merger_detected(self):
        tree = build_merger_tree(self.three_snapshot_history())
        node = TreeNode(1, 0)
        progs = tree.progenitors(node)
        assert len(progs) == 2
        # main progenitor contributes the most mass
        assert progs[0].halo_id == 0

    def test_main_branch(self):
        tree = build_merger_tree(self.three_snapshot_history())
        branch = tree.main_branch(TreeNode(2, 0))
        assert [n.snapshot for n in branch] == [2, 1, 0]
        assert branch[-1].halo_id == 0

    def test_descendant_unique(self):
        tree = build_merger_tree(self.three_snapshot_history())
        assert tree.descendant(TreeNode(0, 0)) == TreeNode(1, 0)
        assert tree.descendant(TreeNode(0, 1)) == TreeNode(1, 0)
        assert tree.descendant(TreeNode(2, 0)) is None
        # at most one outgoing edge per halo
        for node in tree.graph.nodes:
            assert tree.graph.out_degree(node) <= 1

    def test_n_mergers(self):
        tree = build_merger_tree(self.three_snapshot_history())
        assert tree.n_mergers(TreeNode(2, 0)) == 1
        assert tree.n_mergers(TreeNode(0, 0)) == 0

    def test_roots_are_final_halos(self):
        tree = build_merger_tree(self.three_snapshot_history())
        assert tree.roots() == [TreeNode(2, 0)]

    def test_min_shared_fraction_prunes_noise(self):
        cat0 = HaloCatalog(0.5, [halo(0, range(100))])
        # only 2 of 100 particles end up in the later halo: noise
        cat1 = HaloCatalog(1.0, [halo(0, list(range(500, 560)) + [0, 1])])
        tree = build_merger_tree([cat0, cat1], min_shared_fraction=0.05)
        assert tree.graph.number_of_edges() == 0

    def test_catalog_order_validated(self):
        cats = self.three_snapshot_history()
        with pytest.raises(ValueError):
            build_merger_tree(list(reversed(cats)))

    def test_halo_accessor(self):
        tree = build_merger_tree(self.three_snapshot_history())
        assert tree.halo(TreeNode(0, 1)).mass == pytest.approx(0.2)
