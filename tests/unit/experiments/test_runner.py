"""Unit tests for the parallel experiment runner and result detachment."""

import pickle

import pytest

from repro.experiments import ablation_scheduler, degraded_campaign, scaling_nodes
from repro.experiments.runner import (
    Task,
    WorkerError,
    canonical_pickle,
    derive_seed,
    resolve_jobs,
    run_tasks,
)
from repro.services import CampaignConfig, DetachedDeployment, run_campaign
from repro.services.workflow import run_campaign_detached


# -- module-level task functions (must be picklable) ---------------------------

def _square(x):
    return x * x


def _fail(msg):
    raise ValueError(msg)


def _seeded(seed):
    import numpy as np

    return float(np.random.default_rng(seed).random())


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None, 10) == 1
        assert resolve_jobs(1, 10) == 1

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_jobs(0, 100) == (os.cpu_count() or 1)

    def test_clamped_to_task_count(self):
        assert resolve_jobs(16, 3) == 3


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(2007, 0) == derive_seed(2007, 0)

    def test_disjoint_across_base_and_index(self):
        seeds = {derive_seed(b, i) for b in (1, 2, 3) for i in range(10)}
        assert len(seeds) == 30

    def test_no_collision_with_consecutive_bases(self):
        # base 1/index 1 vs base 2/index 0 collide under base+index.
        assert derive_seed(1, 1) != derive_seed(2, 0)


class TestRunTasks:
    def _tasks(self, n=5):
        return [Task(key=f"t{i}", func=_square, args=(i,)) for i in range(n)]

    def test_empty(self):
        assert run_tasks([]) == []

    def test_serial_results_in_order(self):
        assert run_tasks(self._tasks()) == [0, 1, 4, 9, 16]

    def test_parallel_results_in_task_order(self):
        assert run_tasks(self._tasks(), jobs=3) == [0, 1, 4, 9, 16]

    def test_parallel_matches_serial(self):
        tasks = [Task(key=f"s{i}", func=_seeded, args=(derive_seed(7, i),),
                      seed=derive_seed(7, i)) for i in range(6)]
        assert run_tasks(tasks) == run_tasks(tasks, jobs=2)

    def test_serial_error_is_worker_error(self):
        with pytest.raises(WorkerError, match="boom"):
            run_tasks([Task(key="bad", func=_fail, args=("boom",))])

    def test_parallel_error_carries_remote_traceback(self):
        tasks = [Task(key="ok", func=_square, args=(2,)),
                 Task(key="bad", func=_fail, args=("kapow",))]
        with pytest.raises(WorkerError) as exc_info:
            run_tasks(tasks, jobs=2)
        assert exc_info.value.key == "bad"
        assert "ValueError: kapow" in exc_info.value.remote_traceback
        assert "_fail" in exc_info.value.remote_traceback


class TestCanonicalPickle:
    def test_round_trip_fixed_point(self):
        obj = {"request_id": 1, "nested": [{"request_id": 2}]}
        canon = canonical_pickle(obj)
        assert canonical_pickle(pickle.loads(canon)) == canon


class TestDetach:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(CampaignConfig(n_sub_simulations=4, seed=11))

    def test_live_result_not_picklable(self, result):
        with pytest.raises(Exception):
            pickle.dumps(result)

    def test_detach_pickles_and_keeps_accessors(self, result):
        before = {
            "total_elapsed": result.total_elapsed,
            "requests": result.requests_per_sed(),
            "busy": result.busy_time_per_sed(),
            "overhead": result.overhead_per_request,
            "finding": result.tracer.finding_times("ramsesZoom2"),
            "cluster": result.deployment.cluster_of_sed(
                result.deployment.sed_names[0]),
        }
        detached = result.detach()
        assert detached is result
        assert isinstance(result.deployment, DetachedDeployment)
        restored = pickle.loads(pickle.dumps(result))
        assert restored.total_elapsed == before["total_elapsed"]
        assert restored.requests_per_sed() == before["requests"]
        assert restored.busy_time_per_sed() == before["busy"]
        assert restored.overhead_per_request == before["overhead"]
        assert (restored.tracer.finding_times("ramsesZoom2")
                == before["finding"])
        assert (restored.deployment.cluster_of_sed(
            restored.deployment.sed_names[0]) == before["cluster"])

    def test_detach_idempotent(self, result):
        dep = result.detach().deployment
        assert result.detach().deployment is dep


class TestParallelExperiments:
    """Each sweep: jobs=N returns byte-identical results to the serial run."""

    N_SUB = 4

    def test_campaign_id_allocation_is_process_history_free(self):
        first = run_campaign_detached(CampaignConfig(n_sub_simulations=2, seed=3))
        again = run_campaign_detached(CampaignConfig(n_sub_simulations=2, seed=3))
        assert canonical_pickle(first) == canonical_pickle(again)

    def test_scaling_parallel_matches_serial(self):
        kwargs = dict(rank_counts=(1, 2, 4), replicate=4)
        serial = scaling_nodes.run(**kwargs)
        parallel = scaling_nodes.run(jobs=2, **kwargs)
        assert canonical_pickle(serial.breakdowns) == canonical_pickle(
            parallel.breakdowns)
        assert serial.n_particles == parallel.n_particles

    def test_ablation_parallel_matches_serial(self):
        cfg = CampaignConfig(n_sub_simulations=self.N_SUB, seed=5)
        pols = (("default", False), ("fastest", False))
        serial = ablation_scheduler.run(cfg, policies=pols)
        parallel = ablation_scheduler.run(cfg, policies=pols, jobs=2)
        assert list(serial.campaigns) == list(parallel.campaigns)
        for name in serial.campaigns:
            assert (canonical_pickle(serial.campaigns[name].detach())
                    == canonical_pickle(parallel.campaigns[name]))

    def test_degraded_parallel_matches_serial(self):
        kwargs = dict(crash_counts=(1,), n_sub_simulations=self.N_SUB, seed=5)
        serial = degraded_campaign.run(**kwargs)
        parallel = degraded_campaign.run(jobs=2, **kwargs)
        assert (canonical_pickle(serial.baseline.detach())
                == canonical_pickle(parallel.baseline))
        for s_run, p_run in zip(serial.runs, parallel.runs):
            assert s_run.n_crashes == p_run.n_crashes
            assert (canonical_pickle(s_run.result.detach())
                    == canonical_pickle(p_run.result))

    def test_worker_failure_names_the_sweep_point(self):
        with pytest.raises(WorkerError) as exc_info:
            scaling_nodes.run(rank_counts=(2, 0), replicate=2, jobs=2)
        assert exc_info.value.key == "ranks=0"
        assert "ncpu must be >= 1" in str(exc_info.value)
