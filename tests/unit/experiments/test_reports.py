"""Unit tests for report rendering helpers and trace export."""

import csv
import json

import pytest

from repro.core import RequestTrace, Tracer
from repro.experiments.report import ascii_gantt, ascii_series, ascii_table, hms, ms


class TestFormatting:
    def test_hms_paper_style(self):
        assert hms(58723) == "16h 18min 43s"
        assert hms(4511) == "1h 15min 11s"
        assert hms(0) == "0h 00min 00s"

    def test_ms(self):
        assert ms(0.0498) == "49.8ms"

    def test_ascii_table_alignment(self):
        text = ascii_table(("a", "long header"), [("x", 1), ("yy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "long header" in lines[0]

    def test_ascii_gantt_shape(self):
        chart = {
            "sed-a": [(0.0, 3600.0, 1), (3600.0, 7200.0, 2)],
            "sed-b": [(0.0, 7200.0, 3)],
        }
        text = ascii_gantt(chart, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("sed-a")
        assert "#" in lines[0] and "|" in lines[0]
        assert "2.0h" in lines[-1]

    def test_ascii_gantt_empty(self):
        assert ascii_gantt({}) == "(empty)"

    def test_ascii_series_linear_and_log(self):
        text = ascii_series([1.0, 2.0, 3.0], width=20, height=5)
        assert text.count("*") == 3
        logtext = ascii_series([1e-3, 1.0, 1e3], width=20, height=5, log=True)
        assert "*" in logtext

    def test_ascii_series_empty(self):
        assert ascii_series([]) == "(empty series)"


class TestTracerExport:
    def make_tracer(self):
        tracer = Tracer()
        for rid in (1, 2):
            t = tracer.trace(rid, "svc")
            t.submitted_at = 0.0
            t.found_at = 0.05
            t.sed_name = f"sed{rid}"
            t.data_sent_at = 0.05
            t.solve_started_at = 1.0
            t.solve_ended_at = 2.0 + rid
            t.completed_at = 2.1 + rid
            t.status = 0
        return tracer

    def test_to_records(self):
        records = self.make_tracer().to_records()
        assert len(records) == 2
        assert records[0]["finding_time"] == pytest.approx(0.05)
        assert records[1]["solve_duration"] == pytest.approx(3.0)

    def test_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        self.make_tracer().write_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["sed_name"] == "sed1"
        assert float(rows[0]["latency"]) == pytest.approx(0.95)

    def test_json_export(self, tmp_path):
        path = str(tmp_path / "trace.json")
        self.make_tracer().write_json(path)
        with open(path) as fh:
            data = json.load(fh)
        assert [r["request_id"] for r in data] == [1, 2]

    def test_incomplete_trace_exports_blank(self, tmp_path):
        tracer = Tracer()
        tracer.trace(9, "svc").submitted_at = 1.0
        path = str(tmp_path / "trace.csv")
        tracer.write_csv(path)
        with open(path) as fh:
            (row,) = list(csv.DictReader(fh))
        assert row["latency"] == ""
