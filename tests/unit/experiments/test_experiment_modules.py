"""Unit tests for the experiment modules at reduced scale (fast paths).

The full-size experiments live in benchmarks/; these tests exercise the
same code paths in seconds so coverage does not depend on the bench run.
"""

import pytest

from repro.experiments import (
    ablation_scheduler,
    figure2_density,
    figure3_zoom,
    figure4,
    figure5,
    overhead,
    scaling_nodes,
    table_timings,
)
from repro.services import CampaignConfig


SMALL = CampaignConfig(n_sub_simulations=12)


@pytest.fixture(scope="module")
def small_campaign_results():
    result = table_timings.run(SMALL)
    return result


class TestMiddlewareExperiments:
    def test_table_timings_small(self, small_campaign_results):
        r = small_campaign_results
        assert r.part1_seconds > 0
        assert r.sequential_hours > r.campaign.total_elapsed / 3600
        text = table_timings.render(r)
        assert "paper" in text and "1h 15min 11s" in text

    def test_figure4_small(self, small_campaign_results):
        r = figure4.Figure4Result(small_campaign_results.campaign)
        assert sum(r.distribution) == 12
        text = figure4.render(r)
        assert "Gantt" in text and "toulouse" in text.lower()

    def test_figure5_small(self, small_campaign_results):
        r = figure5.Figure5Result(small_campaign_results.campaign)
        assert r.finding_mean_ms == pytest.approx(49.8, rel=0.05)
        text = figure5.render(r)
        assert "finding time" in text and "latency" in text

    def test_overhead_small(self, small_campaign_results):
        r = overhead.OverheadResult(small_campaign_results.campaign)
        assert r.init_time_ms == pytest.approx(20.8, rel=0.01)
        assert "overhead" in overhead.render(r)

    def test_ablation_small(self):
        result = ablation_scheduler.run(
            CampaignConfig(n_sub_simulations=22),
            policies=(("default", False), ("mct", True)))
        assert set(result.campaigns) == {"default", "mct"}
        spans = result.part2_makespans()
        assert spans["mct"] <= spans["default"] * 1.02
        assert "makespan" in ablation_scheduler.render(result)

    def test_routing_ablation_small(self):
        result = ablation_scheduler.run_routing(
            CampaignConfig(n_sub_simulations=6), widths=(2, 4))
        assert set(result.campaigns) == {"pull@2", "push@2",
                                         "pull@4", "push@4"}
        assert result.n_seds(4) > result.n_seds(2)
        # pull finding time grows with width; push must not
        assert (result.finding_mean("pull", 4)
                > result.finding_mean("pull", 2))
        assert result.finding_mean("push", 4) == pytest.approx(
            result.finding_mean("push", 2), rel=0.05)
        assert result.finding_speedup(4) > result.finding_speedup(2)
        text = ablation_scheduler.render_routing(result)
        assert "routing ablation" in text and "speedup" in text

    def test_routing_cluster_specs_unique(self):
        specs = ablation_scheduler.routing_cluster_specs(8)
        assert len(specs) == 8
        assert len({s.full_name for s in specs}) == 8


class TestScienceExperiments:
    def test_figure2_small(self):
        r = figure2_density.run(n_per_side=16, n_steps=16, seed=13)
        assert len(r.aexps) == 4
        assert r.monotone_growth
        text = figure2_density.render(r)
        assert "rms delta" in text

    def test_figure3_small(self):
        r = figure3_zoom.run(n_coarse=16, n_levels=1, n_steps=16, seed=11)
        assert r.mass_resolution_gain == pytest.approx(8.0)
        assert r.center_offset < 0.1
        assert "resolution gain" in figure3_zoom.render(r)

    def test_scaling_nodes_small(self):
        r = scaling_nodes.run(rank_counts=(1, 2, 8), base_resolution=16,
                              replicate=8)
        assert r.efficiency(2) > 0.5
        assert "scaling" in scaling_nodes.render(r)
        with pytest.raises(KeyError):
            r.efficiency(99)
