"""Unit tests for the hierarchical replica catalog."""

from repro.data import CatalogNode, Replica


def rep(data_id, sed, host=None, nbytes=100, volume=""):
    return Replica(
        data_id=data_id,
        sed_name=sed,
        host_name=host or f"host-{sed}",
        nbytes=nbytes,
        volume=volume,
    )


class TestRegistration:
    def test_register_bubbles_to_root(self):
        root = CatalogNode("MA")
        la = CatalogNode("LA-a", parent=root)
        la.register(rep("d1", "sed-a"))
        assert "d1" in la
        assert "d1" in root
        assert root.locate("d1")[0].sed_name == "sed-a"

    def test_sibling_subtree_does_not_see_it(self):
        root = CatalogNode("MA")
        la_a = CatalogNode("LA-a", parent=root)
        la_b = CatalogNode("LA-b", parent=root)
        la_a.register(rep("d1", "sed-a"))
        assert "d1" not in la_b
        assert la_b.locate("d1") == []

    def test_unregister_bubbles_too(self):
        root = CatalogNode("MA")
        la = CatalogNode("LA-a", parent=root)
        la.register(rep("d1", "sed-a"))
        la.unregister("d1", "sed-a")
        assert "d1" not in la
        assert "d1" not in root

    def test_reregister_same_sed_replaces(self):
        root = CatalogNode("MA")
        root.register(rep("d1", "sed-a", nbytes=10))
        root.register(rep("d1", "sed-a", nbytes=99))
        located = root.locate("d1")
        assert len(located) == 1
        assert located[0].nbytes == 99


class TestLocate:
    def test_replicas_sorted_by_sed_name(self):
        root = CatalogNode("MA")
        for sed in ("sed-c", "sed-a", "sed-b"):
            root.register(rep("d1", sed))
        assert [r.sed_name for r in root.locate("d1")] == ["sed-a", "sed-b", "sed-c"]

    def test_unknown_id_is_empty(self):
        assert CatalogNode("MA").locate("ghost") == []

    def test_len_counts_data_ids(self):
        root = CatalogNode("MA")
        root.register(rep("d1", "sed-a"))
        root.register(rep("d1", "sed-b"))
        root.register(rep("d2", "sed-a"))
        assert len(root) == 2


class TestCrashCleanup:
    def test_unregister_all_drops_every_replica_of_a_sed(self):
        root = CatalogNode("MA")
        la = CatalogNode("LA-a", parent=root)
        la.register(rep("d1", "sed-a"))
        la.register(rep("d2", "sed-a"))
        la.register(rep("d1", "sed-b"))
        la.unregister_all("sed-a")
        assert [r.sed_name for r in la.locate("d1")] == ["sed-b"]
        assert la.locate("d2") == []
        assert root.locate("d2") == []
