"""Unit tests for the per-SeD content-addressed data store."""

import numpy as np
import pytest

from repro.data import (
    CostAwareEviction,
    DataStore,
    LRUEviction,
    StoreFullError,
    content_digest,
    make_eviction,
)


class TestContentDigest:
    def test_arrays_hash_by_content(self):
        a = np.arange(10, dtype=float)
        b = np.arange(10, dtype=float)
        assert content_digest(a) == content_digest(b)
        assert content_digest(a) != content_digest(a + 1)

    def test_scalars_hash_by_repr(self):
        assert content_digest(42) == content_digest(42)
        assert content_digest(42) != content_digest(43)


class TestBasicStore:
    def test_put_get_roundtrip(self):
        store = DataStore()
        store.put("a", [1, 2], 16, now=0.0)
        assert "a" in store
        assert store.get("a") == ([1, 2], 16)
        assert len(store) == 1
        assert store.used_bytes == 16

    def test_overwrite_replaces_bytes(self):
        store = DataStore()
        store.put("a", "x", 100, now=0.0)
        store.put("a", "y", 30, now=1.0)
        assert store.used_bytes == 30
        assert store.get("a") == ("y", 30)

    def test_remove_and_clear(self):
        store = DataStore()
        store.put("a", "x", 10, now=0.0)
        store.put("b", "y", 20, now=0.0)
        assert store.remove("a").data_id == "a"
        assert store.remove("ghost") is None
        store.clear()
        assert len(store) == 0
        assert store.used_bytes == 0

    def test_digest_index(self):
        store = DataStore()
        d = content_digest("payload")
        store.put("a", "payload", 10, now=0.0, digest=d)
        assert store.find_digest(d) == "a"
        store.remove("a")
        assert store.find_digest(d) is None

    def test_negative_size_rejected(self):
        from repro.core import DataError
        with pytest.raises(DataError):
            DataStore().put("a", "x", -1, now=0.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DataStore(capacity_bytes=0)


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        store = DataStore(capacity_bytes=100)
        store.put("old", "x", 40, now=0.0)
        store.put("new", "y", 40, now=1.0)
        store.entry("old").last_used = 2.0  # touch: old is now fresher
        evicted = store.put("big", "z", 40, now=3.0)
        assert [e.data_id for e in evicted] == ["new"]
        assert "old" in store and "big" in store

    def test_eviction_cascades_until_it_fits(self):
        store = DataStore(capacity_bytes=100)
        store.put("a", "x", 40, now=0.0)
        store.put("b", "y", 40, now=1.0)
        evicted = store.put("big", "z", 90, now=2.0)
        assert [e.data_id for e in evicted] == ["a", "b"]

    def test_pinned_entries_survive_pressure(self):
        store = DataStore(capacity_bytes=100)
        store.put("sticky", "x", 60, now=0.0, pinned=True)
        store.put("loose", "y", 30, now=1.0)
        evicted = store.put("new", "z", 40, now=2.0)
        assert [e.data_id for e in evicted] == ["loose"]
        assert "sticky" in store
        assert store.pinned_bytes == 60

    def test_all_pinned_raises_store_full(self):
        store = DataStore(capacity_bytes=100)
        store.put("s1", "x", 50, now=0.0, pinned=True)
        store.put("s2", "y", 50, now=0.0, pinned=True)
        with pytest.raises(StoreFullError):
            store.put("new", "z", 10, now=1.0)

    def test_oversized_value_rejected_outright(self):
        store = DataStore(capacity_bytes=100)
        with pytest.raises(StoreFullError):
            store.put("huge", "x", 101, now=0.0)

    def test_cost_aware_keeps_expensive_entries(self):
        store = DataStore(capacity_bytes=100, eviction=CostAwareEviction())
        store.put("cheap", "x", 40, now=0.0, cost=0.001)
        store.put("dear", "y", 40, now=1.0, cost=900.0)
        # LRU would pick "cheap" too here, so age the dear entry to prove
        # the cost term dominates recency.
        store.entry("dear").last_used = 0.0
        store.entry("cheap").last_used = 5.0
        evicted = store.put("new", "z", 40, now=6.0)
        assert [e.data_id for e in evicted] == ["cheap"]
        assert "dear" in store


class TestPolicyRegistry:
    def test_make_eviction(self):
        assert isinstance(make_eviction("lru"), LRUEviction)
        assert isinstance(make_eviction("cost"), CostAwareEviction)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown eviction policy"):
            make_eviction("fifo")
