"""Unit tests for grid-wide result memoization (repro.data.memo).

Descriptor canonicalization (what makes two requests "the same
computation"), the MemoIndex hit/miss/invalidation bookkeeping, and the
obs counter mirroring.
"""

import numpy as np

from repro.core import (
    BaseType,
    DataHandle,
    PersistenceMode,
    ProfileDesc,
    scalar_desc,
)
from repro.core.data import FileRef, file_desc, vector_desc
from repro.core.requests import MemoHit
from repro.data.memo import MemoIndex, descriptor_digest, request_descriptor
from repro.obs import Observability


def _desc(name="svc", out_mode=PersistenceMode.PERSISTENT_RETURN):
    desc = ProfileDesc(name, 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT, out_mode))
    return desc


def _profile(value=7, name="svc", out_mode=PersistenceMode.PERSISTENT_RETURN):
    profile = _desc(name, out_mode).instantiate()
    profile.parameter(0).set(value)
    profile.parameter(1).set(None)
    return profile


class TestDescriptor:
    def test_same_request_same_digest(self):
        assert descriptor_digest(_profile(7)) == descriptor_digest(_profile(7))

    def test_input_value_fragments_key(self):
        assert descriptor_digest(_profile(7)) != descriptor_digest(_profile(8))

    def test_service_name_fragments_key(self):
        a = descriptor_digest(_profile(7, name="a"))
        b = descriptor_digest(_profile(7, name="b"))
        assert a != b

    def test_persistence_mode_fragments_key(self):
        persistent = descriptor_digest(
            _profile(7, out_mode=PersistenceMode.PERSISTENT_RETURN)
        )
        sticky = descriptor_digest(
            _profile(7, out_mode=PersistenceMode.STICKY_RETURN)
        )
        assert persistent != sticky

    def test_out_value_excluded_from_key(self):
        # OUT slots are client-side placeholders: a profile reused from a
        # previous call (OUT already set) must map to the same key.
        fresh = _profile(7)
        reused = _profile(7)
        reused.parameter(1).set(14)
        assert descriptor_digest(fresh) == descriptor_digest(reused)

    def test_ndarray_hashes_by_content_not_identity(self):
        desc = ProfileDesc("vec", 0, 0, 1)
        desc.set_arg(0, vector_desc(BaseType.DOUBLE))
        desc.set_arg(1, scalar_desc(BaseType.INT))

        def prof(arr):
            p = desc.instantiate()
            p.parameter(0).set(arr)
            p.parameter(1).set(None)
            return p

        base = np.arange(16, dtype=float)
        same = descriptor_digest(prof(base.copy()))
        assert descriptor_digest(prof(base)) == same
        # A Fortran-ordered copy of the same values still matches.
        square = np.arange(16, dtype=float).reshape(4, 4)
        fortran = np.asfortranarray(square.copy())
        assert descriptor_digest(prof(square)) == descriptor_digest(
            prof(fortran)
        )
        assert descriptor_digest(prof(base + 1)) != same

    def test_fileref_hashes_by_path_and_content(self):
        desc = ProfileDesc("file", 0, 0, 1)
        desc.set_arg(0, file_desc())
        desc.set_arg(1, scalar_desc(BaseType.INT))

        def prof(ref):
            p = desc.instantiate()
            p.parameter(0).set(ref)
            p.parameter(1).set(None)
            return p

        a = descriptor_digest(prof(FileRef("nml", 64, content="levelmax=9")))
        b = descriptor_digest(prof(FileRef("nml", 64, content="levelmax=9")))
        c = descriptor_digest(prof(FileRef("nml", 64, content="levelmax=11")))
        assert a == b
        assert a != c

    def test_handle_hashes_by_identity_triple(self):
        desc = ProfileDesc("byref", 0, 0, 1)
        desc.set_arg(0, scalar_desc(BaseType.INT, PersistenceMode.PERSISTENT))
        desc.set_arg(1, scalar_desc(BaseType.INT))

        def prof(handle):
            p = desc.instantiate()
            p.parameter(0).set(handle)
            p.parameter(1).set(None)
            return p

        h = DataHandle("sha:abc", "SeD0", 512)
        assert descriptor_digest(prof(h)) == descriptor_digest(
            prof(DataHandle("sha:abc", "SeD0", 512))
        )
        assert descriptor_digest(prof(h)) != descriptor_digest(
            prof(DataHandle("sha:def", "SeD0", 512))
        )

    def test_descriptor_covers_every_argument(self):
        descriptor = request_descriptor(_profile(7))
        assert descriptor[0] == "diet-request"
        assert descriptor[1] == "svc"
        assert len(descriptor[2]) == 2


def _hit(key="k", owner="SeD0", data_id="sha:1"):
    return MemoHit(
        key=key,
        owner=owner,
        out_values={1: DataHandle(data_id, owner, 8)},
    )


class TestMemoIndex:
    def test_miss_then_populate_then_hit(self):
        memo = MemoIndex()
        assert memo.lookup("k", 0.0) is None
        assert memo.put(_hit(), 1.0)
        found = memo.lookup("k", 2.0)
        assert found is not None and found.owner == "SeD0"
        assert memo.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "populated": 1,
        }
        assert memo.stats.hit_rate == 0.5

    def test_first_writer_wins(self):
        memo = MemoIndex()
        assert memo.put(_hit(owner="SeD0"), 0.0)
        assert not memo.put(_hit(owner="SeD1"), 1.0)
        assert memo.peek("k").owner == "SeD0"
        assert memo.stats.populated == 1

    def test_peek_does_not_count(self):
        memo = MemoIndex()
        memo.put(_hit(), 0.0)
        assert memo.peek("k") is not None
        assert memo.peek("missing") is None
        assert memo.stats.hits == 0 and memo.stats.misses == 0

    def test_invalidate_owner_drops_only_its_entries(self):
        memo = MemoIndex()
        memo.put(_hit("k1", "SeD0", "sha:1"), 0.0)
        memo.put(_hit("k2", "SeD0", "sha:2"), 0.0)
        memo.put(_hit("k3", "SeD1", "sha:3"), 0.0)
        assert memo.invalidate_owner("SeD0", 1.0) == 2
        assert memo.invalidate_owner("SeD0", 1.0) == 0  # idempotent
        assert "k3" in memo and len(memo) == 1
        assert memo.stats.invalidations == 2

    def test_invalidate_data_drops_referencing_entries(self):
        memo = MemoIndex()
        memo.put(_hit("k1", "SeD0", "sha:1"), 0.0)
        memo.put(_hit("k2", "SeD0", "sha:2"), 0.0)
        assert memo.invalidate_data("sha:1", 1.0) == 1
        assert "k1" not in memo and "k2" in memo
        # The owner index forgot k1 too: re-invalidating the owner only
        # touches the survivor.
        assert memo.invalidate_owner("SeD0", 2.0) == 1

    def test_repopulate_after_invalidation(self):
        memo = MemoIndex()
        memo.put(_hit(), 0.0)
        memo.invalidate_owner("SeD0", 1.0)
        assert memo.lookup("k", 2.0) is None
        assert memo.put(_hit(owner="SeD1"), 3.0)
        assert memo.lookup("k", 4.0).owner == "SeD1"

    def test_obs_counters_mirror_stats(self):
        obs = Observability()
        memo = MemoIndex(obs=obs)
        memo.lookup("k", 0.0)
        memo.put(_hit(), 1.0)
        memo.lookup("k", 2.0)
        memo.invalidate_owner("SeD0", 3.0)
        assert obs.metrics.counter("memo.hits").value == 1
        assert obs.metrics.counter("memo.misses").value == 1
        assert obs.metrics.counter("memo.invalidations").value == 1

    def test_disabled_obs_counts_nothing(self):
        obs = Observability(enabled=False)
        memo = MemoIndex(obs=obs)
        memo.lookup("k", 0.0)
        memo.put(_hit(), 1.0)
        memo.lookup("k", 2.0)
        assert memo.stats.hits == 1  # plain stats still track
        assert obs.metrics.counter("memo.hits").value == 0
