"""Unit tests for the grid-wired data managers (catalog, transfers,
replication, crash cleanup, the MCT locality hook)."""

import numpy as np
import pytest

from repro.core import (
    BaseType,
    DataHandle,
    PersistenceMode,
    ProfileDesc,
    deploy_paper_hierarchy,
    scalar_desc,
)
from repro.core.exceptions import DataError
from repro.data import DataManagerConfig
from repro.platform import build_grid5000
from repro.sim import Engine


def _noop_desc():
    desc = ProfileDesc("noop", 0, 0, 0)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    return desc


def _solve_noop(profile, ctx):
    yield from ctx.execute(0.1)
    return 0


def build(config=None, **kwargs):
    dep = deploy_paper_hierarchy(
        build_grid5000(Engine()), data=config or DataManagerConfig(**kwargs)
    )
    for sed in dep.seds:
        sed.add_service(_noop_desc(), _solve_noop)
    dep.launch_all()
    dep.client.initialize({"MA_name": "MA"})
    return dep


def put(sed, data_id, value, nbytes, mode=PersistenceMode.PERSISTENT):
    canonical = sed.data_manager.put(data_id, value, nbytes, mode)
    return DataHandle(canonical, sed.name, nbytes)


class TestCatalogWiring:
    def test_put_registers_through_la_to_ma(self):
        dep = build()
        sed = dep.seds[0]
        put(sed, "d1", "payload", 1000)
        located = dep.data_grid.root.locate("d1")
        assert [r.sed_name for r in located] == [sed.name]
        assert located[0].volume == sed.nfs.name

    def test_same_content_dedups_to_one_entry(self):
        dep = build()
        sed = dep.seds[0]
        value = np.arange(64, dtype=float)
        h1 = put(sed, "d1", value, 512)
        h2 = put(sed, "d2", value.copy(), 512)
        assert h2.data_id == h1.data_id  # aliased, not re-stored
        assert len(sed.data_store) == 1
        assert dep.data_grid.stats.dedup == 1

    def test_crash_unregisters_store_but_not_checkpoints(self):
        dep = build()
        sed = dep.seds[0]
        put(sed, "d1", "x", 100)
        dep.engine.run_process(sed.nfs.write(sed.host.name, "zoom/ckpt", 500))
        sed.data_manager.register_checkpoint("zoom/ckpt", 500, sed.nfs)
        sed.crash()
        assert dep.data_grid.root.locate("d1") == []
        # The dump lives on NFS, not in the SeD process: it survives.
        assert dep.data_grid.root.locate("ckpt:zoom/ckpt") != []


class TestResolve:
    def test_local_hit_costs_nothing(self):
        dep = build()
        sed = dep.seds[0]
        handle = put(sed, "d1", "payload", 1000)

        def run():
            value = yield from sed.data_manager.resolve(handle)
            return value

        assert dep.engine.run_process(run()) == "payload"
        stats = dep.data_grid.stats
        assert stats.hits == 1
        assert stats.bytes_moved == 0 and stats.bytes_nfs == 0

    def test_same_cluster_pull_takes_nfs_fast_path(self):
        dep = build()
        owner, sibling = dep.seds[0], dep.seds[1]
        assert owner.cluster == sibling.cluster
        handle = put(owner, "d1", "payload", 10_000)

        def run():
            value = yield from sibling.data_manager.resolve(handle)
            return value

        assert dep.engine.run_process(run()) == "payload"
        stats = dep.data_grid.stats
        assert stats.bytes_nfs == 10_000
        assert stats.bytes_moved == 0  # never crossed the network

    def test_cross_cluster_pull_moves_bytes(self):
        dep = build()
        owner = dep.seds[0]
        remote = next(s for s in dep.seds if s.cluster != owner.cluster)
        handle = put(owner, "d1", "payload", 10_000)

        def run():
            value = yield from remote.data_manager.resolve(handle)
            return value

        assert dep.engine.run_process(run()) == "payload"
        stats = dep.data_grid.stats
        assert stats.misses == 1
        assert stats.bytes_moved == 10_000

    def test_concurrent_pulls_coalesce(self):
        dep = build()
        owner = dep.seds[0]
        remote = next(s for s in dep.seds if s.cluster != owner.cluster)
        handle = put(owner, "d1", "payload", 10_000)
        values = []

        def puller():
            value = yield from remote.data_manager.resolve(handle)
            values.append(value)

        dep.engine.process(puller())
        dep.engine.process(puller())
        dep.engine.run()
        assert values == ["payload", "payload"]
        stats = dep.data_grid.stats
        assert stats.coalesced == 1
        assert stats.bytes_moved == 10_000  # one wire transfer, not two

    def test_unknown_id_raises_data_error(self):
        dep = build()
        sed = dep.seds[0]
        bogus = DataHandle("ghost", dep.seds[3].name, 100)

        def run():
            yield from sed.data_manager.resolve(bogus)

        with pytest.raises(DataError):
            dep.engine.run_process(run())


class TestReplication:
    def test_eager_broadcast_replicates_to_every_other_cluster(self):
        dep = build(replication="eager-broadcast")
        owner = dep.seds[0]
        put(owner, "d1", "payload", 5000)
        dep.engine.run()  # drain the replication pushes
        holders = {r.sed_name for r in dep.data_grid.root.locate("d1")}
        assert owner.name in holders
        other_clusters = {s.cluster for s in dep.seds if s.cluster != owner.cluster}
        replicated = {dep.sed_by_name(n).cluster for n in holders if n != owner.name}
        assert replicated == other_clusters
        assert dep.data_grid.stats.replicas == len(other_clusters)

    def test_pulled_copies_stay_put_under_any_policy(self):
        """DTM semantics: a pulled PERSISTENT datum remains on the pulling
        SeD even with replication disabled."""
        dep = build()  # replication="none"
        owner = dep.seds[0]
        remote = next(s for s in dep.seds if s.cluster != owner.cluster)
        handle = put(owner, "d1", "payload", 5000)

        def run():
            yield from remote.data_manager.resolve(handle)

        dep.engine.run_process(run())
        assert handle.data_id in remote.data_manager.store
        # A second resolve on the same SeD is now a local hit.
        dep.engine.run_process(run())
        assert dep.data_grid.stats.hits == 1
        assert dep.data_grid.stats.bytes_moved == 5000  # one transfer only

    def test_per_cluster_policy_pushes_a_sibling_replica(self):
        dep = build(replication="per-cluster")
        owner = dep.seds[0]
        sibling = dep.seds[1]
        assert owner.cluster == sibling.cluster
        put(owner, "d1", "payload", 5000)
        dep.engine.run()  # drain the replication push
        holders = {r.sed_name for r in dep.data_grid.root.locate("d1")}
        assert holders == {owner.name, sibling.name}
        # The owner crashing no longer loses the dataset.
        owner.crash()
        assert [r.sed_name for r in dep.data_grid.root.locate("d1")] == [sibling.name]


class TestEvictionOnGrid:
    def test_sticky_survives_capacity_pressure(self):
        dep = build(capacity_bytes=1000)
        sed = dep.seds[0]
        put(sed, "sticky", "s", 600, mode=PersistenceMode.STICKY)
        put(sed, "loose", "l", 300)
        put(sed, "new", "n", 300)  # forces one eviction
        assert "sticky" in sed.data_manager.store
        assert "loose" not in sed.data_manager.store
        assert dep.data_grid.stats.evictions == 1
        # The evicted entry also left the catalog.
        assert dep.data_grid.root.locate("loose") == []

    def test_sticky_never_serves_to_peers(self):
        dep = build()
        owner = dep.seds[0]
        remote = next(s for s in dep.seds if s.cluster != owner.cluster)
        handle = put(owner, "pin", "secret", 100, mode=PersistenceMode.STICKY)

        def run():
            yield from remote.data_manager.resolve(handle)

        with pytest.raises(DataError, match="sticky|failed"):
            dep.engine.run_process(run())


class TestSchedulingHook:
    def test_transfer_cost_zero_when_resident(self):
        dep = build()
        sed = dep.seds[0]
        handle = put(sed, "d1", "payload", 10**8)
        costs = dep.data_grid.transfer_cost([handle], dep.sed_names)
        assert costs[sed.name] == 0.0
        others = [c for n, c in costs.items() if n != sed.name]
        assert all(c > 0.0 for c in others)
        # Same-site SeDs are cheaper sources than cross-WAN ones.
        sibling = dep.seds[1]
        far = next(s for s in dep.seds if s.cluster != sed.cluster)
        assert costs[sibling.name] < costs[far.name]

    def test_mct_prefers_the_data_owner(self):
        """With a large persistent argument in play, MCT's completion
        estimate must send the job to the SeD already holding the bytes."""
        from repro.core import EstimationVector, SchedulingContext
        from repro.core.scheduling import make_policy

        dep = build()
        owner = dep.seds[0]
        handle = put(owner, "d1", "payload", 10**9)
        ctx = SchedulingContext()
        ctx.data_transfer_cost = dep.data_grid.transfer_cost([handle], dep.sed_names)
        cands = [
            EstimationVector(n, {"EST_SPEED": 1.0, "EST_TCOMP": 100.0})
            for n in dep.sed_names
        ]
        chosen = make_policy("mct").choose(cands, ctx)
        assert chosen.sed_name == owner.name
