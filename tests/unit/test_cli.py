"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_experiment_subcommands_exist(self):
        parser = build_parser()
        for name in ("timings", "figure4", "figure5", "overhead",
                     "architecture", "campaign", "list"):
            args = parser.parse_args([name] if name != "campaign"
                                     else ["campaign"])
            assert args.command == name

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--n-sub", "7", "--policy", "mct", "--seed", "9"])
        assert args.n_sub == 7
        assert args.policy == "mct"
        assert args.seed == 9

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--policy", "quantum"])

    def test_load_options(self):
        args = build_parser().parse_args(
            ["load", "--loads", "1,5", "--duration", "10", "--clients",
             "200", "--grids", "3", "--churn", "0", "--jobs", "2"])
        assert args.command == "load"
        assert args.loads == "1,5"
        assert args.duration == 10.0
        assert args.clients == 200
        assert args.grids == 3
        assert args.churn == 0
        assert args.jobs == 2


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "timings" in out and "campaign" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_architecture_runs(self, capsys):
        assert main(["architecture"]) == 0
        out = capsys.readouterr().out
        assert "MA" in out and "SeD" in out

    def test_campaign_with_trace(self, capsys, tmp_path):
        path = str(tmp_path / "t.csv")
        assert main(["campaign", "--n-sub", "5", "--trace-csv", path]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        with open(path) as fh:
            assert len(fh.readlines()) == 7   # header + part1 + 5 zooms

    def test_load_quick_run(self, capsys):
        assert main(["load", "--loads", "3", "--duration", "5",
                     "--clients", "50", "--churn", "0", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "saturation throughput" in out
        assert "routing=pull" in out and "routing=push" in out
