"""Unit tests for Resource, Store and Container."""

import pytest

from repro.sim import Container, Engine, Resource, Store


@pytest.fixture
def engine():
    return Engine()


class TestResource:
    def test_capacity_validation(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_grants_up_to_capacity(self, engine):
        res = Resource(engine, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered and not r3.triggered
        assert res.count == 2
        assert res.queue_length == 1

    def test_release_grants_next_fifo(self, engine):
        res = Resource(engine, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        res.release(r1)
        assert r2.triggered and not r3.triggered

    def test_release_cancels_queued(self, engine):
        res = Resource(engine, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)        # cancel while queued
        assert res.queue_length == 0
        res.release(r1)
        assert res.count == 0

    def test_release_unknown_raises(self, engine):
        res = Resource(engine)
        other = Resource(engine)
        req = other.request()
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_mutual_exclusion_timeline(self, engine):
        res = Resource(engine, capacity=1)
        spans = []

        def worker(tag, hold):
            req = yield from res.acquire()
            start = engine.now
            yield engine.timeout(hold)
            res.release(req)
            spans.append((tag, start, engine.now))

        for tag, hold in (("a", 2.0), ("b", 3.0), ("c", 1.0)):
            engine.process(worker(tag, hold))
        engine.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0), ("c", 5.0, 6.0)]

    def test_no_overlap_under_capacity_two(self, engine):
        res = Resource(engine, capacity=2)
        active = {"n": 0, "max": 0}

        def worker():
            req = yield from res.acquire()
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            yield engine.timeout(1.0)
            active["n"] -= 1
            res.release(req)

        for _ in range(10):
            engine.process(worker())
        engine.run()
        assert active["max"] == 2


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        got = []

        def consumer():
            item = yield store.get()
            got.append((engine.now, item))

        def producer():
            yield engine.timeout(2.0)
            store.put("late")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert got == [(2.0, "late")]

    def test_fifo_order(self, engine):
        store = Store(engine)
        for i in range(5):
            store.put(i)
        assert [store.get().value for _ in range(5)] == list(range(5))

    def test_getters_served_fifo(self, engine):
        store = Store(engine)
        results = []

        def consumer(tag):
            item = yield store.get()
            results.append((tag, item))

        engine.process(consumer("first"))
        engine.process(consumer("second"))

        def producer():
            yield engine.timeout(1.0)
            store.put("A")
            store.put("B")

        engine.process(producer())
        engine.run()
        assert results == [("first", "A"), ("second", "B")]

    def test_try_get(self, engine):
        store = Store(engine)
        assert store.try_get() is None
        store.put(7)
        assert store.try_get() == 7
        assert len(store) == 0


class TestContainer:
    def test_init_validation(self, engine):
        with pytest.raises(ValueError):
            Container(engine, capacity=10, init=11)

    def test_put_get_levels(self, engine):
        tank = Container(engine, capacity=100, init=50)
        tank.put(25)
        assert tank.level == 75
        ev = tank.get(70)
        assert ev.triggered
        assert tank.level == 5

    def test_overflow_raises(self, engine):
        tank = Container(engine, capacity=10)
        with pytest.raises(ValueError):
            tank.put(11)

    def test_get_blocks_until_available(self, engine):
        tank = Container(engine, init=0, capacity=100)
        times = []

        def consumer():
            yield tank.get(10)
            times.append(engine.now)

        def producer():
            yield engine.timeout(1.0)
            tank.put(5)
            yield engine.timeout(1.0)
            tank.put(5)

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert times == [2.0]

    def test_fifo_no_overtaking(self, engine):
        tank = Container(engine, init=0, capacity=100)
        big = tank.get(50)
        small = tank.get(1)
        tank.put(10)
        # the big request is at the head; the small one must not overtake
        assert not big.triggered and not small.triggered
        tank.put(40)
        assert big.triggered and not small.triggered
        tank.put(1)
        assert small.triggered

    def test_negative_amounts_raise(self, engine):
        tank = Container(engine)
        with pytest.raises(ValueError):
            tank.put(-1)
        with pytest.raises(ValueError):
            tank.get(-1)
