"""Unit tests for deterministic random streams."""

import numpy as np

from repro.sim import RandomStreams, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {stable_seed("x", i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_nonnegative_63_bit(self):
        for i in range(100):
            s = stable_seed("k", i)
            assert 0 <= s < 2 ** 63

    def test_order_sensitivity(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(7)
        a = streams.get("x").random(5)
        b = RandomStreams(7).get("x").random(5)
        assert np.array_equal(a, b)

    def test_cached_generator_continues(self):
        streams = RandomStreams(7)
        g1 = streams.get("x")
        g2 = streams.get("x")
        assert g1 is g2

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.get("a").random(100)
        b = streams.get("b").random(100)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(3)
        first = s1.get("main").random(10)

        s2 = RandomStreams(3)
        s2.get("new-consumer").random(50)   # a new consumer appears
        second = s2.get("main").random(10)
        assert np.array_equal(first, second)

    def test_spawn_deterministic(self):
        a = RandomStreams(1).spawn("child").get("s").random(4)
        b = RandomStreams(1).spawn("child").get("s").random(4)
        assert np.array_equal(a, b)

    def test_spawn_differs_from_parent(self):
        parent = RandomStreams(1)
        child = parent.spawn("child")
        assert not np.array_equal(parent.get("s").random(4),
                                  child.get("s").random(4))

    def test_indexed_streams(self):
        streams = RandomStreams(9)
        draws = [streams.get("work", i).random() for i in range(50)]
        assert len(set(draws)) == 50

    def test_uniform_stream_iterator(self):
        streams = RandomStreams(5)
        it = streams.uniform_stream("u")
        vals = [next(it) for _ in range(10)]
        assert all(0 <= v < 1 for v in vals)
        assert len(set(vals)) == 10
