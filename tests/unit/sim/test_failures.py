"""Unit tests for the crash-and-restart failure injector."""

import pytest

from repro.sim import Engine, FailureInjector, Outage, OutageRecord


@pytest.fixture
def engine():
    return Engine()


class FakeVictim:
    """Records the crash/restart call times the injector drives."""

    def __init__(self, engine, name="victim"):
        self.engine = engine
        self.name = name
        self.crashes = []
        self.restarts = []
        self.down = False

    def crash(self):
        assert not self.down, "crash() while already down"
        self.down = True
        self.crashes.append(self.engine.now)

    def restart(self):
        assert self.down, "restart() while already up"
        self.down = False
        self.restarts.append(self.engine.now)


class TestOutage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Outage(at=-1.0, duration=5.0)
        with pytest.raises(ValueError):
            Outage(at=1.0, duration=0.0)

    def test_record_downtime(self):
        rec = OutageRecord("sed1", down_at=10.0, up_at=70.0)
        assert rec.downtime == 60.0


class TestFailureInjector:
    def test_drives_crash_then_restart(self, engine):
        victim = FakeVictim(engine)
        injector = FailureInjector(engine)
        injector.schedule(victim, [Outage(at=5.0, duration=20.0)])
        assert injector.pending == 1
        engine.run()
        assert victim.crashes == [5.0]
        assert victim.restarts == [25.0]
        assert injector.pending == 0
        assert injector.history == [OutageRecord("victim", 5.0, 25.0)]

    def test_multiple_victims_ordered_history(self, engine):
        a = FakeVictim(engine, "a")
        b = FakeVictim(engine, "b")
        injector = FailureInjector(engine)
        injector.schedule(a, [Outage(at=10.0, duration=5.0)])
        injector.schedule(b, [Outage(at=1.0, duration=2.0)])
        engine.run()
        # history is ordered by restart time, not by schedule order
        assert [(r.name, r.down_at, r.up_at) for r in injector.history] == \
            [("b", 1.0, 3.0), ("a", 10.0, 15.0)]

    def test_sequential_outages_of_one_victim(self, engine):
        victim = FakeVictim(engine)
        injector = FailureInjector(engine)
        injector.schedule(victim, [Outage(at=30.0, duration=10.0),
                                   Outage(at=5.0, duration=10.0)])
        engine.run()
        assert victim.crashes == [5.0, 30.0]
        assert victim.restarts == [15.0, 40.0]
        assert len(injector.history) == 2

    def test_deterministic_replay(self):
        def trace():
            eng = Engine()
            victim = FakeVictim(eng)
            injector = FailureInjector(eng)
            injector.schedule(victim, [Outage(at=3.0, duration=4.0),
                                       Outage(at=20.0, duration=1.5)])
            eng.run()
            return [(r.name, r.down_at, r.up_at) for r in injector.history]

        assert trace() == trace()
