"""Unit tests for hosts, links, routing and transfers."""

import pytest

from repro.sim import Engine, Host, Link, Network, NetworkError


@pytest.fixture
def engine():
    return Engine()


def star(engine, n_leaves=3, latency=0.01, bw=1e6):
    """hub <-> leaf-i topology."""
    net = Network(engine)
    net.add_host(Host(engine, "hub"))
    for i in range(n_leaves):
        net.add_host(Host(engine, f"leaf{i}"))
        net.connect("hub", f"leaf{i}", Link(engine, f"l{i}", latency, bw))
    return net


class TestHost:
    def test_speed_validation(self, engine):
        with pytest.raises(ValueError):
            Host(engine, "bad", speed=0)

    def test_compute_time_scales_with_speed(self, engine):
        fast = Host(engine, "fast", speed=4.0)
        slow = Host(engine, "slow", speed=1.0)
        assert fast.compute_time(8.0) == 2.0
        assert slow.compute_time(8.0) == 8.0

    def test_negative_work_raises(self, engine):
        with pytest.raises(ValueError):
            Host(engine, "h").compute_time(-1)

    def test_execute_serializes_on_one_core(self, engine):
        host = Host(engine, "h", speed=1.0, cores=1)
        done = []

        def job(tag):
            yield from host.execute(2.0)
            done.append((tag, engine.now))

        engine.process(job("a"))
        engine.process(job("b"))
        engine.run()
        assert done == [("a", 2.0), ("b", 4.0)]

    def test_execute_parallel_on_two_cores(self, engine):
        host = Host(engine, "h", speed=1.0, cores=2)
        done = []

        def job(tag):
            yield from host.execute(2.0)
            done.append((tag, engine.now))

        engine.process(job("a"))
        engine.process(job("b"))
        engine.run()
        assert [t for _, t in done] == [2.0, 2.0]


class TestTopology:
    def test_duplicate_host_rejected(self, engine):
        net = Network(engine)
        net.add_host(Host(engine, "a"))
        with pytest.raises(NetworkError):
            net.add_host(Host(engine, "a"))

    def test_unknown_host_lookup(self, engine):
        net = Network(engine)
        with pytest.raises(NetworkError):
            net.host("ghost")

    def test_connect_unknown_host(self, engine):
        net = Network(engine)
        net.add_host(Host(engine, "a"))
        with pytest.raises(NetworkError):
            net.connect("a", "ghost", Link(engine, "l", 0.01, 1e6))

    def test_link_validation(self, engine):
        with pytest.raises(ValueError):
            Link(engine, "l", -0.1, 1e6)
        with pytest.raises(ValueError):
            Link(engine, "l", 0.1, 0)


class TestRouting:
    def test_self_route_empty(self, engine):
        net = star(engine)
        assert net.route("hub", "hub") == []
        assert net.transfer_time("hub", "hub", 10**9) == 0.0

    def test_leaf_to_leaf_via_hub(self, engine):
        net = star(engine)
        route = net.route("leaf0", "leaf1")
        assert len(route) == 2

    def test_shortest_path_by_latency(self, engine):
        net = Network(engine)
        for name in "abcd":
            net.add_host(Host(engine, name))
        # a-b-d is lower latency than direct a-d
        net.connect("a", "b", Link(engine, "ab", 0.001, 1e6))
        net.connect("b", "d", Link(engine, "bd", 0.001, 1e6))
        net.connect("a", "d", Link(engine, "ad", 0.010, 1e6))
        assert [l.name for l in net.route("a", "d")] == ["ab", "bd"]

    def test_unreachable_raises(self, engine):
        net = Network(engine)
        net.add_host(Host(engine, "a"))
        net.add_host(Host(engine, "b"))
        with pytest.raises(NetworkError):
            net.route("a", "b")

    def test_route_cache_symmetric(self, engine):
        net = star(engine)
        fwd = net.route("leaf0", "leaf2")
        back = net.route("leaf2", "leaf0")
        assert [l.name for l in back] == [l.name for l in reversed(fwd)]


class TestRouteCache:
    """The all-pairs expansion behind route() and the derived metrics."""

    def test_expansion_fills_whole_component(self, engine):
        net = star(engine, n_leaves=3)
        net.route("leaf0", "leaf1")
        # One miss ran a full Dijkstra from leaf0: every pair touching
        # leaf0 is now cached, including the symmetric reverses.
        for other in ("hub", "leaf1", "leaf2"):
            assert ("leaf0", other) in net._route_cache
            assert (other, "leaf0") in net._route_cache

    def test_symmetric_entry_is_the_reverse_path(self, engine):
        net = star(engine)
        net.route("leaf0", "leaf1")
        fwd = net._route_cache[("leaf0", "leaf1")]
        back = net._route_cache[("leaf1", "leaf0")]
        assert back == list(reversed(fwd))

    def test_symmetric_entry_not_overwritten(self, engine):
        # First write wins: a later expansion from the far end must not
        # replace the reverse entry the first expansion seeded (on latency
        # ties the two could legitimately pick different equal-cost paths,
        # and swapping mid-run would change transfer event orderings).
        net = star(engine)
        net.route("leaf0", "leaf1")
        seeded = net._route_cache[("leaf1", "leaf0")]
        net.route("leaf1", "leaf2")   # expands from leaf1
        assert net._route_cache[("leaf1", "leaf0")] is seeded

    def test_precompute_routes_counts_all_pairs(self, engine):
        net = star(engine, n_leaves=3)   # hub + 3 leaves = 4 hosts
        n = net.precompute_routes()
        assert n == 4 * 3                # every ordered pair, no self-routes
        assert net.route("leaf2", "leaf1") is net._route_cache[("leaf2", "leaf1")]

    def test_connect_invalidates_caches(self, engine):
        net = star(engine)
        assert net.transfer_time("leaf0", "leaf1", 1000) == pytest.approx(
            0.02 + 1000 / 1e6)
        assert net._route_info
        # A new direct link makes the old cached route stale.
        net.connect("leaf0", "leaf1", Link(engine, "direct", 0.001, 1e6))
        assert not net._route_cache and not net._route_info
        assert net.transfer_time("leaf0", "leaf1", 1000) == pytest.approx(
            0.001 + 1000 / 1e6)

    def test_route_metrics_match_route(self, engine):
        net = star(engine, latency=0.01, bw=1e6)
        latency, bottleneck, shared, wan = net._route_metrics("leaf0", "leaf2")
        route = net.route("leaf0", "leaf2")
        assert latency == pytest.approx(sum(l.latency for l in route))
        assert bottleneck == min(l.bandwidth for l in route)
        assert shared == ()              # star links are not shared
        assert wan is False              # no link was marked wan=True

    def test_route_metrics_shared_links_in_lock_order(self, engine):
        net = Network(engine)
        for name in "abc":
            net.add_host(Host(engine, name))
        # Create the far link first so path order (ab, bc) differs from
        # creation (= lock) order (bc, ab).
        bc = Link(engine, "bc", 0.001, 1e6, shared=True)
        ab = Link(engine, "ab", 0.001, 1e6, shared=True)
        net.connect("b", "c", bc)
        net.connect("a", "b", ab)
        _, _, shared, _ = net._route_metrics("a", "c")
        assert [l.name for l in shared] == ["bc", "ab"]
        assert [l._uid for l in shared] == sorted(l._uid for l in shared)

    def test_self_route_metrics_sentinel(self, engine):
        net = star(engine)
        assert net._route_metrics("hub", "hub") == (0.0, 0.0, (), False)


class TestTransfers:
    def test_latency_plus_bandwidth(self, engine):
        net = star(engine, latency=0.01, bw=1e6)
        t = net.transfer_time("leaf0", "leaf1", 500_000)
        assert t == pytest.approx(0.02 + 0.5)

    def test_bottleneck_bandwidth(self, engine):
        net = Network(engine)
        for name in "abc":
            net.add_host(Host(engine, name))
        net.connect("a", "b", Link(engine, "fat", 0.0, 10e6))
        net.connect("b", "c", Link(engine, "thin", 0.0, 1e6))
        assert net.transfer_time("a", "c", 1_000_000) == pytest.approx(1.0)

    def test_timed_transfer_process(self, engine):
        net = star(engine, latency=0.005, bw=2e6)

        def xfer():
            duration = yield from net.transfer("leaf0", "leaf1", 1_000_000)
            return duration

        assert engine.run_process(xfer()) == pytest.approx(0.01 + 0.5)

    def test_negative_size_raises(self, engine):
        net = star(engine)
        with pytest.raises(ValueError):
            net.transfer_time("leaf0", "leaf1", -5)

    def test_shared_link_serializes(self, engine):
        net = Network(engine)
        net.add_host(Host(engine, "a"))
        net.add_host(Host(engine, "b"))
        net.connect("a", "b",
                    Link(engine, "serial", 0.0, 1e6, shared=True))
        ends = []

        def xfer():
            yield from net.transfer("a", "b", 1_000_000)
            ends.append(engine.now)

        engine.process(xfer())
        engine.process(xfer())
        engine.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_unshared_link_concurrent(self, engine):
        net = star(engine, latency=0.0, bw=1e6)
        ends = []

        def xfer():
            yield from net.transfer("leaf0", "leaf1", 1_000_000)
            ends.append(engine.now)

        engine.process(xfer())
        engine.process(xfer())
        engine.run()
        assert ends == [pytest.approx(1.0), pytest.approx(1.0)]


class TestCrossingTransfers:
    """Regression: two transfers traversing the same shared links in
    opposite directions used to deadlock (each held one link's slot while
    waiting for the other's).  Slots are now claimed in a deterministic
    global link order, so crossing transfers serialize instead."""

    def _line(self, engine):
        """a -- L1 -- m -- L2 -- b, both links shared (capacity 1)."""
        net = Network(engine)
        for name in ("a", "m", "b"):
            net.add_host(Host(engine, name))
        net.connect("a", "m", Link(engine, "L1", 0.0, 1e6, shared=True))
        net.connect("m", "b", Link(engine, "L2", 0.0, 1e6, shared=True))
        return net

    def test_opposite_directions_complete(self, engine):
        net = self._line(engine)
        ends = []

        def xfer(src, dst):
            yield from net.transfer(src, dst, 1_000_000)
            ends.append((src, dst, engine.now))

        engine.process(xfer("a", "b"))
        engine.process(xfer("b", "a"))
        engine.run(until=100.0)
        # Pre-fix this deadlocked: the queue drained with both transfers
        # parked on each other's link and ends stayed empty.
        assert [(s, d) for s, d, _ in ends] == [("a", "b"), ("b", "a")]
        assert [t for _, _, t in ends] == [pytest.approx(1.0),
                                           pytest.approx(2.0)]

    def test_many_crossing_transfers_drain(self, engine):
        net = self._line(engine)
        done = []

        def xfer(src, dst, tag):
            yield from net.transfer(src, dst, 100_000)
            done.append(tag)

        for i in range(4):
            engine.process(xfer("a", "b", f"fwd{i}"))
            engine.process(xfer("b", "a", f"rev{i}"))
        engine.run(until=100.0)
        assert len(done) == 8

    def test_partially_overlapping_routes_complete(self, engine):
        """Crossing transfers whose routes share only a middle link must
        also drain: w -- e1 -- a -- L1 -- m -- L2 -- b -- e2 -- x with the
        two long routes traversing L1/L2 in opposite directions."""
        net = self._line(engine)
        net.add_host(Host(engine, "w"))
        net.add_host(Host(engine, "x"))
        net.connect("w", "a", Link(engine, "e1", 0.0, 1e6, shared=True))
        net.connect("b", "x", Link(engine, "e2", 0.0, 1e6, shared=True))
        done = []

        def xfer(src, dst):
            yield from net.transfer(src, dst, 500_000)
            done.append((src, dst))

        engine.process(xfer("w", "x"))
        engine.process(xfer("x", "w"))
        engine.process(xfer("b", "a"))
        engine.run(until=100.0)
        assert sorted(done) == [("b", "a"), ("w", "x"), ("x", "w")]
