"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)


@pytest.fixture
def engine():
    return Engine()


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_timeout_advances_clock(self, engine):
        engine.timeout(5.0)
        engine.run()
        assert engine.now == 5.0

    def test_run_until_stops_early(self, engine):
        engine.timeout(10.0)
        stopped = engine.run(until=3.0)
        assert stopped == 3.0
        assert engine.now == 3.0

    def test_run_until_past_raises(self, engine):
        engine.timeout(1.0)
        engine.run()
        with pytest.raises(ValueError):
            engine.run(until=0.5)

    def test_peek_empty_queue(self, engine):
        assert engine.peek() == float("inf")

    def test_step_empty_queue_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.step()


class TestEvent:
    def test_succeed_delivers_value(self, engine):
        ev = engine.event()

        def proc():
            value = yield ev
            return value

        p = engine.process(proc())
        ev.succeed(42)
        engine.run()
        assert p.value == 42

    def test_double_trigger_raises(self, engine):
        ev = engine.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_raises_in_waiter(self, engine):
        ev = engine.event()

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        p = engine.process(proc())
        ev.fail(RuntimeError("boom"))
        engine.run()
        assert p.value == "caught boom"

    def test_fail_requires_exception(self, engine):
        ev = engine.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_before_trigger_raises(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_negative_timeout_raises(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1.0)


class TestProcess:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(1.0)
            return "done"

        assert engine.run_process(proc()) == "done"

    def test_sequential_timeouts(self, engine):
        times = []

        def proc():
            for d in (1.0, 2.0, 3.0):
                yield engine.timeout(d)
                times.append(engine.now)

        engine.run_process(proc())
        assert times == [1.0, 3.0, 6.0]

    def test_process_waits_on_process(self, engine):
        def child():
            yield engine.timeout(2.0)
            return "child-result"

        def parent():
            value = yield engine.process(child())
            return value

        assert engine.run_process(parent()) == "child-result"
        assert engine.now == 2.0

    def test_yield_non_event_raises(self, engine):
        def proc():
            yield "not an event"

        with pytest.raises(SimulationError):
            engine.run_process(proc())

    def test_unhandled_exception_escalates(self, engine):
        def proc():
            yield engine.timeout(1.0)
            raise ValueError("inside process")

        with pytest.raises(ValueError, match="inside process"):
            engine.run_process(proc())

    def test_unwatched_failed_process_escalates_at_dispatch(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise KeyError("orphan failure")

        engine.process(bad())
        with pytest.raises(KeyError):
            engine.run()

    def test_defused_failure_does_not_escalate(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise KeyError("defused")

        p = engine.process(bad())
        engine.defuse(p)
        engine.run()
        assert not p.ok

    def test_watched_failure_propagates_to_watcher_only(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise ValueError("for the watcher")

        def watcher():
            try:
                yield engine.process(bad())
            except ValueError:
                return "handled"

        assert engine.run_process(watcher()) == "handled"

    def test_deadline_miss_raises(self, engine):
        def slow():
            yield engine.timeout(100.0)

        with pytest.raises(SimulationError):
            engine.run_process(slow(), until=1.0)

    def test_is_alive(self, engine):
        def proc():
            yield engine.timeout(1.0)

        p = engine.process(proc())
        assert p.is_alive
        engine.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_wakes_process(self, engine):
        def sleeper():
            try:
                yield engine.timeout(100.0)
                return "slept"
            except Interrupt as i:
                return f"interrupted:{i.cause}@{engine.now}"

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(1.0)
            p.interrupt("wake-up")

        engine.process(interrupter())
        engine.run()
        # the abandoned 100s timeout still drains, but the process resumed
        # at the interrupt time
        assert p.value == "interrupted:wake-up@1.0"

    def test_interrupt_finished_process_raises(self, engine):
        def quick():
            yield engine.timeout(0.5)

        p = engine.process(quick())
        engine.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_all(self, engine):
        def proc():
            t1 = engine.timeout(1.0, "a")
            t2 = engine.timeout(3.0, "b")
            result = yield engine.all_of([t1, t2])
            return sorted(result.values())

        assert engine.run_process(proc()) == ["a", "b"]
        assert engine.now == 3.0

    def test_any_of_fires_on_first(self, engine):
        def proc():
            t1 = engine.timeout(1.0, "fast")
            t2 = engine.timeout(5.0, "slow")
            result = yield engine.any_of([t1, t2])
            return (list(result.values()), engine.now)

        values, fired_at = engine.run_process(proc())
        assert values == ["fast"]
        assert fired_at == 1.0

    def test_empty_all_of_immediate(self, engine):
        def proc():
            result = yield engine.all_of([])
            return result

        assert engine.run_process(proc()) == {}

    def test_all_of_propagates_failure(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise RuntimeError("child died")

        def proc():
            p = engine.process(bad())
            try:
                yield engine.all_of([p, engine.timeout(5.0)])
            except RuntimeError:
                return "saw failure"

        assert engine.run_process(proc()) == "saw failure"

    def test_any_of_detaches_from_losing_siblings(self, engine):
        """Once an AnyOf settles, its callback is removed from every
        still-pending sibling (regression: dead callbacks accumulated on
        long-lived events)."""
        def proc():
            fast = engine.timeout(1.0, "fast")
            slow = engine.timeout(5.0, "slow")
            cond = engine.any_of([fast, slow])
            result = yield cond
            assert slow.callbacks is not None  # slow has not fired yet
            assert cond._on_fire not in slow.callbacks
            return list(result.values())

        assert engine.run_process(proc()) == ["fast"]

    def test_late_failing_sibling_leaves_any_of_settled(self, engine):
        """A sibling that fails after the AnyOf already succeeded must not
        disturb the settled condition."""
        def bad():
            yield engine.timeout(2.0)
            raise RuntimeError("late loser")

        def proc():
            loser = engine.process(bad())
            cond = engine.any_of([engine.timeout(1.0, "winner"), loser])
            result = yield cond
            assert cond.ok and list(result.values()) == ["winner"]
            try:
                yield loser  # watch the loser so its failure isn't escalated
            except RuntimeError:
                pass
            assert cond.ok and list(cond.value.values()) == ["winner"]
            return "settled"

        assert engine.run_process(proc()) == "settled"

    def test_all_of_detaches_after_child_failure(self, engine):
        """An AllOf that fails early stops listening to the slow children."""
        def bad():
            yield engine.timeout(1.0)
            raise RuntimeError("child died")

        def proc():
            p = engine.process(bad())
            slow = engine.timeout(10.0)
            cond = engine.all_of([p, slow])
            try:
                yield cond
            except RuntimeError:
                pass
            assert slow.callbacks is not None
            assert cond._on_fire not in slow.callbacks
            return engine.now

        assert engine.run_process(proc()) == 1.0


class TestRunUntilComplete:
    def test_tolerates_perpetual_background_process(self, engine):
        """run_until_complete returns when *its* process finishes even while
        a heartbeat-style process keeps the queue non-empty forever."""
        def forever():
            while True:
                yield engine.timeout(1.0)

        def main():
            yield engine.timeout(3.5)
            return "done"

        engine.process(forever())
        assert engine.run_until_complete(main()) == "done"
        assert engine.now == 3.5

    def test_deadlock_raises(self, engine):
        def main():
            yield engine.event()  # nobody will ever trigger this

        with pytest.raises(SimulationError):
            engine.run_until_complete(main())

    def test_max_time_exceeded_raises(self, engine):
        def forever():
            while True:
                yield engine.timeout(1.0)

        def main():
            yield engine.event()

        engine.process(forever())
        with pytest.raises(SimulationError):
            engine.run_until_complete(main(), max_time=10.0)

    def test_failure_propagates_once(self, engine):
        def main():
            yield engine.timeout(1.0)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            engine.run_until_complete(main())


class TestDeterminism:
    def test_fifo_at_equal_time(self, engine):
        order = []

        def proc(tag):
            yield engine.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            engine.process(proc(tag))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_identical_runs_identical_traces(self):
        def build():
            eng = Engine()
            log = []

            def worker(tag, delay):
                yield eng.timeout(delay)
                log.append((eng.now, tag))

            for i, tag in enumerate("abcde"):
                eng.process(worker(tag, 1.0 + (i % 3)))
            eng.run()
            return log

        assert build() == build()
