"""Unit tests for the open-loop traffic generator (repro.sim.traffic)."""

import math

import pytest

from repro.sim.rng import RandomStreams
from repro.sim.traffic import (
    DEFAULT_MIX,
    RequestClass,
    TrafficConfig,
    generate_arrivals,
    percentile,
    summarize,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized_and_monotone(self):
        w = zipf_weights(100, 1.1)
        assert w.shape == (100,)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] > w[i + 1] for i in range(99))

    def test_s_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        assert all(x == pytest.approx(0.1) for x in w)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.1)


class TestConfigValidation:
    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(rate=0.0, duration=10.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(rate=1.0, duration=-1.0)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(rate=1.0, duration=10.0, n_clients=0)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(rate=1.0, duration=10.0, mix=())

    def test_bad_request_class_rejected(self):
        with pytest.raises(ValueError):
            RequestClass("zero-weight", weight=0.0, work=1.0)
        with pytest.raises(ValueError):
            RequestClass("zero-work", weight=1.0, work=0.0)


class TestGenerateArrivals:
    CONFIG = TrafficConfig(rate=50.0, duration=20.0, n_clients=200)

    def test_deterministic_per_seed(self):
        a = generate_arrivals(self.CONFIG, RandomStreams(42))
        b = generate_arrivals(self.CONFIG, RandomStreams(42))
        assert a == b
        c = generate_arrivals(self.CONFIG, RandomStreams(43))
        assert a != c

    def test_sorted_and_truncated_to_duration(self):
        arrivals = generate_arrivals(self.CONFIG, RandomStreams(7))
        assert arrivals
        assert all(0.0 <= a.at < self.CONFIG.duration for a in arrivals)
        assert all(arrivals[i].at <= arrivals[i + 1].at
                   for i in range(len(arrivals) - 1))

    def test_rate_roughly_honoured(self):
        arrivals = generate_arrivals(self.CONFIG, RandomStreams(7))
        expected = self.CONFIG.rate * self.CONFIG.duration
        assert 0.7 * expected < len(arrivals) < 1.3 * expected

    def test_zipf_population_is_head_heavy(self):
        """Rank-0 clients must dominate: the top 1% of the population
        absorbs far more than 1% of the arrivals."""
        arrivals = generate_arrivals(
            TrafficConfig(rate=200.0, duration=20.0, n_clients=1000,
                          zipf_s=1.1), RandomStreams(11))
        head = sum(1 for a in arrivals if a.client < 10)
        assert all(0 <= a.client < 1000 for a in arrivals)
        assert head / len(arrivals) > 0.10   # 1% of clients, >10% of load

    def test_mix_weights_honoured(self):
        arrivals = generate_arrivals(self.CONFIG, RandomStreams(11))
        counts = {cls.name: 0 for cls in DEFAULT_MIX}
        for a in arrivals:
            counts[a.request_class.name] += 1
        # 8:3:1 weights — the order must show in the counts.
        assert counts["interactive"] > counts["analysis"] > counts["survey"]

    def test_huge_population_stays_fast(self):
        """10^6 Zipf clients is a vectorized searchsorted, not a loop."""
        arrivals = generate_arrivals(
            TrafficConfig(rate=500.0, duration=10.0, n_clients=10 ** 6),
            RandomStreams(5))
        assert len(arrivals) > 1000
        assert all(0 <= a.client < 10 ** 6 for a in arrivals)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50.0) == 50
        assert percentile(values, 99.0) == 99
        assert percentile(values, 100.0) == 100

    def test_small_sample(self):
        assert percentile([3.0, 1.0, 2.0], 99.0) == 3.0
        assert percentile([5.0], 50.0) == 5.0

    def test_empty_sample_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestSummarize:
    def test_full_summary(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == 2.0
        assert s["max"] == 4.0

    def test_empty_summary_is_nan(self):
        s = summarize([])
        assert s["n"] == 0
        assert math.isnan(s["mean"]) and math.isnan(s["p99"])
