"""Unit tests for the NFS working-directory model."""

import pytest

from repro.platform import NfsError, NfsVolume
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def volume(engine):
    vol = NfsVolume(engine, "nfs-test", capacity_bytes=1000,
                    throughput=100.0, max_concurrent=2)
    vol.export_to("node0")
    vol.export_to("node1")
    return vol


class TestMounts:
    def test_mounted_hosts_allowed(self, engine, volume):
        def writer():
            yield from volume.write("node0", "f", 100)

        engine.run_process(writer())
        assert volume.exists("f")

    def test_unmounted_host_rejected(self, engine, volume):
        def writer():
            yield from volume.write("intruder", "f", 10)

        with pytest.raises(NfsError, match="does not mount"):
            engine.run_process(writer())

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            NfsVolume(engine, "bad", capacity_bytes=0)


class TestContents:
    def test_write_read_roundtrip(self, engine, volume):
        def proc():
            yield from volume.write("node0", "data.bin", 300)
            size = yield from volume.read("node1", "data.bin")
            return size

        assert engine.run_process(proc()) == 300

    def test_overwrite_replaces_size(self, engine, volume):
        def proc():
            yield from volume.write("node0", "f", 400)
            yield from volume.write("node0", "f", 100)

        engine.run_process(proc())
        assert volume.used_bytes == 100

    def test_capacity_enforced(self, engine, volume):
        def proc():
            yield from volume.write("node0", "a", 900)
            yield from volume.write("node0", "b", 200)

        with pytest.raises(NfsError, match="full"):
            engine.run_process(proc())

    def test_unlink(self, engine, volume):
        def proc():
            yield from volume.write("node0", "f", 10)

        engine.run_process(proc())
        volume.unlink("f")
        assert not volume.exists("f")
        volume.unlink("f")  # idempotent

    def test_read_missing_raises(self, engine, volume):
        def proc():
            yield from volume.read("node0", "ghost")

        with pytest.raises(NfsError, match="no such file"):
            engine.run_process(proc())


class TestTiming:
    def test_write_charges_throughput_time(self, engine, volume):
        def proc():
            yield from volume.write("node0", "f", 500)
            return engine.now

        assert engine.run_process(proc()) == pytest.approx(5.0)

    def test_daemon_contention(self, engine, volume):
        """max_concurrent=2: a third concurrent access queues."""
        ends = []

        def writer(i):
            yield from volume.write("node0", f"f{i}", 200)
            ends.append(engine.now)

        for i in range(3):
            engine.process(writer(i))
        engine.run()
        assert ends == [pytest.approx(2.0), pytest.approx(2.0),
                        pytest.approx(4.0)]


class TestWriteReservations:
    """In-flight writes reserve capacity; a crash must release it."""

    def test_concurrent_writes_cannot_oversubscribe(self, engine, volume):
        """Two 600-byte writes on a 1000-byte volume: the second is refused
        while the first is still in flight, even though used_bytes is 0."""
        outcomes = []

        def writer(path):
            try:
                yield from volume.write("node0", path, 600)
                outcomes.append("ok")
            except NfsError:
                outcomes.append("full")

        engine.process(writer("a"))
        engine.process(writer("b"))
        engine.run()
        assert sorted(outcomes) == ["full", "ok"]
        assert volume.used_bytes == 600

    def test_reservation_released_on_completion(self, engine, volume):
        def writer():
            yield from volume.write("node0", "f", 600)

        engine.run_process(writer())
        assert volume.reserved_bytes == 0

    def test_release_host_frees_crashed_writers_reservation(self, engine,
                                                            volume):
        """A writer that dies mid-write (its generator is never resumed)
        leaks its reservation unless release_host drops it — and its
        partial file must never land."""
        def writer():
            yield from volume.write("node0", "partial", 600)

        engine.process(writer())
        engine.run(until=1.0)            # mid-write: 600 B at 100 B/s
        assert volume.reserved_bytes == 600
        assert volume.release_host("node0") == 1
        assert volume.reserved_bytes == 0
        # The freed capacity is immediately usable by another host.
        def writer2():
            yield from volume.write("node1", "fresh", 900)

        engine.run_process(writer2())
        assert volume.exists("fresh")
        # The crashed writer's file never appears, even after its timeout
        # event fires.
        engine.run()
        assert not volume.exists("partial")

    def test_release_host_is_idempotent_and_scoped(self, engine, volume):
        def writer():
            yield from volume.write("node0", "f", 300)

        engine.process(writer())
        engine.run(until=1.0)
        assert volume.release_host("node1") == 0   # other host: untouched
        assert volume.reserved_bytes == 300
        assert volume.release_host("node0") == 1
        assert volume.release_host("node0") == 0   # second call: no-op
