"""Unit tests for the NFS working-directory model."""

import pytest

from repro.platform import NfsError, NfsVolume
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def volume(engine):
    vol = NfsVolume(engine, "nfs-test", capacity_bytes=1000,
                    throughput=100.0, max_concurrent=2)
    vol.export_to("node0")
    vol.export_to("node1")
    return vol


class TestMounts:
    def test_mounted_hosts_allowed(self, engine, volume):
        def writer():
            yield from volume.write("node0", "f", 100)

        engine.run_process(writer())
        assert volume.exists("f")

    def test_unmounted_host_rejected(self, engine, volume):
        def writer():
            yield from volume.write("intruder", "f", 10)

        with pytest.raises(NfsError, match="does not mount"):
            engine.run_process(writer())

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            NfsVolume(engine, "bad", capacity_bytes=0)


class TestContents:
    def test_write_read_roundtrip(self, engine, volume):
        def proc():
            yield from volume.write("node0", "data.bin", 300)
            size = yield from volume.read("node1", "data.bin")
            return size

        assert engine.run_process(proc()) == 300

    def test_overwrite_replaces_size(self, engine, volume):
        def proc():
            yield from volume.write("node0", "f", 400)
            yield from volume.write("node0", "f", 100)

        engine.run_process(proc())
        assert volume.used_bytes == 100

    def test_capacity_enforced(self, engine, volume):
        def proc():
            yield from volume.write("node0", "a", 900)
            yield from volume.write("node0", "b", 200)

        with pytest.raises(NfsError, match="full"):
            engine.run_process(proc())

    def test_unlink(self, engine, volume):
        def proc():
            yield from volume.write("node0", "f", 10)

        engine.run_process(proc())
        volume.unlink("f")
        assert not volume.exists("f")
        volume.unlink("f")  # idempotent

    def test_read_missing_raises(self, engine, volume):
        def proc():
            yield from volume.read("node0", "ghost")

        with pytest.raises(NfsError, match="no such file"):
            engine.run_process(proc())


class TestTiming:
    def test_write_charges_throughput_time(self, engine, volume):
        def proc():
            yield from volume.write("node0", "f", 500)
            return engine.now

        assert engine.run_process(proc()) == pytest.approx(5.0)

    def test_daemon_contention(self, engine, volume):
        """max_concurrent=2: a third concurrent access queues."""
        ends = []

        def writer(i):
            yield from volume.write("node0", f"f{i}", 200)
            ends.append(engine.now)

        for i in range(3):
            engine.process(writer(i))
        engine.run()
        assert ends == [pytest.approx(2.0), pytest.approx(2.0),
                        pytest.approx(4.0)]
