"""Unit tests for the Grid'5000 testbed builder (§5.1 layout)."""

import pytest

from repro.platform import (
    ClusterSpec,
    NODES_PER_SED,
    PAPER_CLUSTERS,
    build_grid5000,
)
from repro.sim import Engine


@pytest.fixture
def platform():
    return build_grid5000(Engine())


class TestPaperLayout:
    def test_five_sites_six_clusters(self, platform):
        assert len(platform.sites) == 5
        assert len(platform.clusters) == 6

    def test_lyon_has_two_clusters(self, platform):
        assert len(platform.sites["lyon"].clusters) == 2

    def test_eleven_seds(self, platform):
        """2 per cluster except one Lyon cluster with 1 (§5.1)."""
        assert len(platform.sed_hosts) == 11

    def test_sagittaire_single_sed_from_reservation_cap(self, platform):
        sag = platform.clusters["lyon-sagittaire"]
        assert len(sag.sed_hosts) == 1
        # the cap genuinely blocked the second block
        assert platform.batch.free_nodes("lyon-sagittaire") == 70 - NODES_PER_SED

    def test_each_sed_controls_16_machines(self, platform):
        for host in platform.sed_hosts:
            assert host.properties["n_nodes"] == NODES_PER_SED

    def test_sed_speeds_match_machine_catalogue(self, platform):
        grillon = platform.clusters["nancy-grillon"]
        assert grillon.sed_hosts[0].speed == pytest.approx(2.6)
        violette = platform.clusters["toulouse-violette"]
        # efficiency-degraded Opteron 246
        assert violette.sed_hosts[0].speed == pytest.approx(2.0 * 0.91)

    def test_nancy_faster_than_toulouse(self, platform):
        """The Figure-4 spread source: Nancy fastest, Toulouse slowest."""
        speeds = {name: c.sed_speed for name, c in platform.clusters.items()}
        assert max(speeds, key=speeds.get) == "nancy-grillon"
        assert min(speeds, key=speeds.get) == "toulouse-violette"

    def test_nfs_exported_to_cluster_seds_only(self, platform):
        chti = platform.clusters["lille-chti"]
        for host in chti.sed_hosts:
            assert chti.nfs.is_mounted_on(host.name)
        foreign = platform.clusters["nancy-grillon"].sed_hosts[0]
        assert not chti.nfs.is_mounted_on(foreign.name)

    def test_ma_and_client_share_a_lyon_node(self, platform):
        assert platform.ma_host is platform.client_host
        assert platform.ma_host.name.startswith("lyon")


class TestConnectivity:
    def test_all_seds_reachable_from_ma(self, platform):
        for host in platform.sed_hosts:
            route = platform.network.route(platform.ma_host.name, host.name)
            assert len(route) >= 2

    def test_wan_latency_exceeds_lan(self, platform):
        lan = platform.network.transfer_time(
            "lyon-ma", platform.clusters["lyon-capricorne"].sed_hosts[0].name, 0)
        wan = platform.network.transfer_time(
            "lyon-ma", platform.clusters["sophia-helios"].sed_hosts[0].name, 0)
        assert wan > lan

    def test_cluster_of_host(self, platform):
        sed = platform.clusters["lille-chti"].sed_hosts[1]
        assert platform.cluster_of_host(sed.name).full_name == "lille-chti"
        assert platform.cluster_of_host("renater-core") is None


class TestCustomLayouts:
    def test_custom_spec_list(self):
        specs = [ClusterSpec("nowhere", "tiny", "opteron-250", 32, n_seds=2)]
        platform = build_grid5000(Engine(), cluster_specs=specs)
        assert len(platform.sed_hosts) == 2
        assert len(platform.sites) == 1

    def test_insufficient_nodes_limit_seds(self):
        specs = [ClusterSpec("s", "c", "opteron-246", 20, n_seds=2)]
        platform = build_grid5000(Engine(), cluster_specs=specs)
        # only one 16-node block fits in 20 nodes
        assert len(platform.sed_hosts) == 1
