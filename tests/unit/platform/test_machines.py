"""Unit tests for the Opteron machine catalogue."""

import pytest

from repro.platform import OPTERON_CATALOGUE, MachineSpec, machine


class TestCatalogue:
    def test_paper_models_present(self):
        # §5.1: "AMD Opterons 246, 248, 250, 252 and 275"
        for model in (246, 248, 250, 252, 275):
            assert f"opteron-{model}" in OPTERON_CATALOGUE

    def test_clock_ordering(self):
        # within the single-core 2xx line, clock rises with model number
        clocks = [machine(f"opteron-{m}").clock_ghz for m in (246, 248, 250, 252)]
        assert clocks == sorted(clocks)
        assert clocks[0] == 2.0 and clocks[-1] == 2.6

    def test_275_is_dual_core(self):
        spec = machine("opteron-275")
        assert spec.cores == 2
        assert spec.node_speed == pytest.approx(4.4)

    def test_speed_equals_clock(self):
        for key, spec in OPTERON_CATALOGUE.items():
            assert spec.speed == spec.clock_ghz

    def test_unknown_key_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="opteron-246"):
            machine("opteron-999")

    def test_specs_are_frozen(self):
        spec = machine("opteron-246")
        with pytest.raises(Exception):
            spec.clock_ghz = 9.9
