"""Unit tests for the OAR-like batch reservation ledger."""

import pytest

from repro.platform import BatchScheduler, ReservationError


@pytest.fixture
def batch():
    b = BatchScheduler()
    b.add_cluster("big", total_nodes=64)
    b.add_cluster("capped", total_nodes=70, user_cap=16)
    return b


class TestReserve:
    def test_grant_and_count(self, batch):
        res = batch.reserve("big", 16, 3600.0)
        assert res.n_nodes == 16
        assert batch.free_nodes("big") == 48

    def test_exhaustion(self, batch):
        batch.reserve("big", 60, 3600.0)
        with pytest.raises(ReservationError, match="only 4 free"):
            batch.reserve("big", 16, 3600.0)

    def test_user_cap_blocks_second_block(self, batch):
        """The paper's 11-SeD anomaly: a cap admits one 16-node block."""
        batch.reserve("capped", 16, 3600.0, owner="diet")
        with pytest.raises(ReservationError, match="user cap"):
            batch.reserve("capped", 16, 3600.0, owner="diet")

    def test_cap_is_per_owner(self, batch):
        batch.reserve("capped", 16, 3600.0, owner="diet")
        other = batch.reserve("capped", 16, 3600.0, owner="astro")
        assert other.n_nodes == 16

    def test_unknown_cluster(self, batch):
        with pytest.raises(ReservationError):
            batch.reserve("ghost", 1, 60.0)

    def test_invalid_node_count(self, batch):
        with pytest.raises(ValueError):
            batch.reserve("big", 0, 60.0)

    def test_job_ids_unique_and_increasing(self, batch):
        ids = [batch.reserve("big", 1, 60.0).job_id for _ in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5


class TestRelease:
    def test_release_returns_nodes(self, batch):
        res = batch.reserve("big", 32, 3600.0)
        batch.release(res)
        assert batch.free_nodes("big") == 64

    def test_double_release_raises(self, batch):
        res = batch.reserve("big", 8, 3600.0)
        batch.release(res)
        with pytest.raises(ReservationError):
            batch.release(res)

    def test_release_frees_cap_headroom(self, batch):
        res = batch.reserve("capped", 16, 3600.0, owner="diet")
        batch.release(res)
        again = batch.reserve("capped", 16, 3600.0, owner="diet")
        assert again.n_nodes == 16


class TestLedger:
    def test_reservations_listing(self, batch):
        batch.reserve("big", 8, 60.0, owner="a")
        batch.reserve("big", 8, 60.0, owner="b")
        owners = [r.owner for r in batch.reservations("big")]
        assert owners == ["a", "b"]

    def test_duplicate_cluster_rejected(self, batch):
        with pytest.raises(ValueError):
            batch.add_cluster("big", 10)
