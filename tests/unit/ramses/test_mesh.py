"""Unit tests for CIC deposit and interpolation."""

import numpy as np
import pytest

from repro.ramses import cic_deposit, cic_interpolate, density_contrast


class TestDeposit:
    def test_mass_conservation(self):
        rng = np.random.default_rng(0)
        x = rng.random((1000, 3))
        mass = rng.random(1000)
        grid = cic_deposit(x, mass, 16)
        assert grid.sum() == pytest.approx(mass.sum(), rel=1e-12)

    def test_particle_at_cell_center_single_cell(self):
        # grid values live at cell centres (m + 0.5)/n
        x = np.array([[(2 + 0.5) / 8, (3 + 0.5) / 8, (4 + 0.5) / 8]])
        grid = cic_deposit(x, np.array([1.0]), 8)
        assert grid[2, 3, 4] == pytest.approx(1.0)
        assert np.count_nonzero(grid) == 1

    def test_particle_between_cells_splits_mass(self):
        # halfway between centres of cells 2 and 3 in x
        x = np.array([[3.0 / 8, (3 + 0.5) / 8, (3 + 0.5) / 8]])
        grid = cic_deposit(x, np.array([1.0]), 8)
        assert grid[2, 3, 3] == pytest.approx(0.5)
        assert grid[3, 3, 3] == pytest.approx(0.5)

    def test_periodic_wrap(self):
        # near the box edge: mass wraps to index 0
        x = np.array([[0.999, 0.5 / 8, 0.5 / 8]])
        grid = cic_deposit(x, np.array([1.0]), 8)
        assert grid[7, 0, 0] + grid[0, 0, 0] == pytest.approx(1.0)
        assert grid[0, 0, 0] > 0

    def test_empty_particles(self):
        grid = cic_deposit(np.empty((0, 3)), np.empty(0), 4)
        assert grid.shape == (4, 4, 4) and grid.sum() == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((5, 2)), np.zeros(5), 4)
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((5, 3)), np.zeros(4), 4)


class TestInterpolate:
    def test_constant_field_exact(self):
        field = np.full((8, 8, 8), 3.5)
        rng = np.random.default_rng(1)
        x = rng.random((100, 3))
        assert np.allclose(cic_interpolate(field, x), 3.5)

    def test_linear_field_exact_along_axis(self):
        # CIC reproduces linear functions exactly (away from wrap)
        n = 16
        centers = (np.arange(n) + 0.5) / n
        field = np.broadcast_to(centers[:, None, None], (n, n, n)).copy()
        x = np.column_stack([np.linspace(0.2, 0.8, 50),
                             np.full(50, 0.5), np.full(50, 0.5)])
        got = cic_interpolate(field, x)
        assert np.allclose(got, x[:, 0], atol=1e-12)

    def test_vector_field_shape(self):
        field = np.zeros((8, 8, 8, 3))
        field[..., 1] = 2.0
        x = np.random.default_rng(2).random((10, 3))
        out = cic_interpolate(field, x)
        assert out.shape == (10, 3)
        assert np.allclose(out[:, 1], 2.0)

    def test_gather_scatter_adjoint(self):
        """sum_p m_p f(x_p) == sum_c f_c rho_c for any field f."""
        rng = np.random.default_rng(3)
        n = 8
        x = rng.random((200, 3))
        mass = rng.random(200)
        field = rng.random((n, n, n))
        lhs = np.sum(mass * cic_interpolate(field, x))
        rhs = np.sum(field * cic_deposit(x, mass, n))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            cic_interpolate(np.zeros((4, 4)), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            cic_interpolate(np.zeros((4, 5, 4)), np.zeros((1, 3)))


class TestDensityContrast:
    def test_uniform_lattice_zero_contrast(self):
        n = 8
        q = (np.arange(n) + 0.5) / n
        x = np.stack(np.meshgrid(q, q, q, indexing="ij"), axis=-1).reshape(-1, 3)
        delta = density_contrast(x, np.full(len(x), 1.0 / len(x)), n)
        assert np.allclose(delta, 0.0, atol=1e-12)

    def test_zero_mean(self):
        rng = np.random.default_rng(4)
        x = rng.random((500, 3))
        delta = density_contrast(x, np.full(500, 0.002), 8)
        assert delta.mean() == pytest.approx(0.0, abs=1e-13)

    def test_multi_mass_zero_mean(self):
        rng = np.random.default_rng(5)
        x = rng.random((500, 3))
        mass = rng.choice([1.0, 8.0], size=500)
        delta = density_contrast(x, mass, 8)
        assert delta.mean() == pytest.approx(0.0, abs=1e-12)

    def test_no_mass_raises(self):
        with pytest.raises(ValueError):
            density_contrast(np.empty((0, 3)), np.empty(0), 4)
