"""Compiled physics kernels vs their numpy mirrors.

The `_physcore.c` contract is *bit* compatibility, not closeness: every
kernel (CIC scatter/gather, leapfrog kick/drift, FoF) must produce
``np.array_equal`` outputs against the pure-numpy mirror, and the
bincount scatter mirror must itself stay bit-identical to the historical
8x ``np.add.at`` implementation.  Edge cases (empty sets, particles
exactly on cell boundaries and at ``1 - eps``, mixed-mass zoom sets)
run under *both* implementations via the ``impl`` fixture; the
bit-compat tests skip on boxes without a C toolchain — in CI the C
matrix leg asserts the compiled kernels actually loaded.
"""

import numpy as np
import pytest

import repro.galics.halomaker as halomaker
import repro.ramses.integrator as integrator
import repro.ramses.mesh as mesh
from repro.galics import friends_of_friends
from repro.galics.halomaker import _canonical_labels
from repro.grafic import make_single_level_ic
from repro.ramses import (
    EDS,
    GravitySolver,
    Leapfrog,
    LayzerIrvineMonitor,
    ParticleSet,
    cic_deposit,
    cic_interpolate,
    cic_weights,
)
from repro.ramses.physcore import phys_c

needs_c = pytest.mark.skipif(phys_c is None,
                             reason="no C toolchain / REPRO_PURE_PY=1")

IMPLS = ["python"] + (["c"] if phys_c is not None else [])


@pytest.fixture(params=IMPLS)
def impl(request, monkeypatch):
    """Run a test under the numpy mirror and (when built) the C kernels."""
    if request.param == "python":
        monkeypatch.setattr(mesh, "phys_c", None)
        monkeypatch.setattr(integrator, "phys_c", None)
        monkeypatch.setattr(halomaker, "phys_c", None)
    return request.param


def edge_positions(n):
    """Positions probing every CIC edge case on an n-grid."""
    eps = np.finfo(np.float64).eps
    pts = [
        [0.0, 0.0, 0.0],                          # box corner
        [0.5 / n, 0.5 / n, 0.5 / n],              # first cell centre
        [1.0 / n, 2.0 / n, 3.0 / n],              # exactly on cell boundaries
        [0.5, 0.5, 0.5],
        [1.0 - eps, 1.0 - eps, 1.0 - eps],        # x = 1 - eps wraps to 0
        [1.0 - 1.0 / n, 0.5, 1.0 - 0.5 / n],
        [0.5 - 0.5 / n, 0.5 + 0.5 / n, 0.25],
    ]
    return np.array(pts)


def legacy_add_at_deposit(x, mass, n):
    """The pre-bincount implementation: 8 ``np.add.at`` scatter passes."""
    i0, frac = cic_weights(x, n)
    grid = np.zeros((n, n, n))
    for dx in (0, 1):
        wx = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                iz = (i0[:, 2] + dz) % n
                np.add.at(grid, (ix, iy, iz), mass * wx * wy * wz)
    return grid


def seeded_cloud(npart=4000, seed=11, mixed=False):
    rng = np.random.default_rng(seed)
    x = np.vstack([rng.random((npart - 7, 3)), edge_positions(8)])
    if mixed:
        # zoom-style mass mix: 8x refined mass in a corner of the box
        mass = np.where(x[:, 0] < 0.3, 1.0, 8.0) / npart
    else:
        mass = rng.random(npart) / npart
    return x, mass


class TestBincountMirror:
    """Satellite: the numpy scatter mirror vs the old add.at passes."""

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_bit_identical_to_legacy(self, n):
        x, mass = seeded_cloud(seed=n)
        i0, frac = cic_weights(x, n)
        got = mesh._deposit_py(i0, frac, mass, n)
        assert np.array_equal(got, legacy_add_at_deposit(x, mass, n))

    def test_mixed_mass_bit_identical_to_legacy(self):
        x, mass = seeded_cloud(seed=3, mixed=True)
        i0, frac = cic_weights(x, 8)
        got = mesh._deposit_py(i0, frac, mass, 8)
        assert np.array_equal(got, legacy_add_at_deposit(x, mass, 8))


@needs_c
class TestBitCompat:
    """C kernels vs numpy mirrors: exact equality on seeded inputs."""

    @pytest.mark.parametrize("n", [4, 8, 32])
    @pytest.mark.parametrize("mixed", [False, True])
    def test_deposit(self, n, mixed):
        x, mass = seeded_cloud(seed=n, mixed=mixed)
        i0, frac = cic_weights(x, n)
        assert np.array_equal(cic_deposit(x, mass, n),
                              mesh._deposit_py(i0, frac, mass, n))

    @pytest.mark.parametrize("ncomp", [None, 3])
    def test_gather(self, ncomp):
        n = 8
        x, _ = seeded_cloud(seed=5)
        rng = np.random.default_rng(6)
        shape = (n, n, n) if ncomp is None else (n, n, n, ncomp)
        field = rng.standard_normal(shape)
        i0, frac = cic_weights(x, n)
        assert np.array_equal(
            cic_interpolate(field, x),
            mesh._interpolate_py(field, i0, frac, n, ncomp is not None))

    def test_kick_drift(self):
        rng = np.random.default_rng(9)
        n = 1000
        x = rng.random((n, 3))
        p = 5.0 * rng.standard_normal((n, 3))
        acc = rng.standard_normal((n, 3))
        coef = 0.0173
        p_c = p.copy()
        phys_c.kick(p_c, acc, coef, p_c.size)
        assert np.array_equal(p_c, p + acc * coef)
        # drift far enough that positions wrap both ways
        dx = p * coef
        x_c = x.copy()
        maxd = phys_c.drift(x_c, p, coef, x_c.size)
        assert np.array_equal(x_c, np.mod(x + dx, 1.0))
        assert maxd == float(np.abs(dx).max())
        assert np.all(x_c >= 0.0) and np.all(x_c < 1.0)

    @pytest.mark.parametrize("ll", [0.004, 0.02, 0.1])
    def test_fof(self, ll):
        rng = np.random.default_rng(21)
        x = rng.random((3000, 3))
        labels_c = friends_of_friends(x, ll)
        saved = halomaker.phys_c
        halomaker.phys_c = None
        try:
            labels_py = friends_of_friends(x, ll)
        finally:
            halomaker.phys_c = saved
        assert np.array_equal(labels_c, labels_py)

    def test_leapfrog_step_bit_identical(self):
        """A full KDK step agrees between implementations, in place."""
        ic = make_single_level_ic(16, 50.0, EDS, a_start=0.05, seed=2)
        solver = GravitySolver(EDS, 16)
        parts_c = ic.particles.copy()
        parts_py = ic.particles.copy()
        Leapfrog(EDS, solver).step(parts_c, 0.05, 0.06)
        saved = (mesh.phys_c, integrator.phys_c)
        mesh.phys_c = integrator.phys_c = None
        try:
            Leapfrog(EDS, solver).step(parts_py, 0.05, 0.06)
        finally:
            mesh.phys_c, integrator.phys_c = saved
        assert np.array_equal(parts_c.x, parts_py.x)
        assert np.array_equal(parts_c.p, parts_py.p)


class TestKernelEdgeCases:
    """Edge cases under both implementations (via the ``impl`` fixture)."""

    def test_empty_particles(self, impl):
        grid = cic_deposit(np.empty((0, 3)), np.empty(0), 4)
        assert grid.shape == (4, 4, 4) and grid.sum() == 0
        out = cic_interpolate(np.ones((4, 4, 4)), np.empty((0, 3)))
        assert out.shape == (0,)
        vout = cic_interpolate(np.ones((4, 4, 4, 3)), np.empty((0, 3)))
        assert vout.shape == (0, 3)
        assert friends_of_friends(np.empty((0, 3)), 0.1).shape == (0,)
        parts = ParticleSet.empty()
        lf = Leapfrog(EDS, GravitySolver(EDS, 4))
        assert lf.drift(parts, 0.5, 0.01) == 0.0

    def test_boundary_positions_conserve_mass(self, impl):
        n = 8
        x = edge_positions(n)
        mass = np.arange(1.0, len(x) + 1.0)
        grid = cic_deposit(x, mass, n)
        assert grid.sum() == pytest.approx(mass.sum(), rel=1e-14)
        # a particle exactly on a cell boundary splits between 8 cells
        xb = np.array([[1.0 / n, 2.0 / n, 3.0 / n]])
        gb = cic_deposit(xb, np.array([1.0]), n)
        assert np.count_nonzero(gb) == 8
        assert np.allclose(gb[gb > 0], 0.125)

    def test_one_minus_eps_wraps_cleanly(self, impl):
        eps = np.finfo(np.float64).eps
        x = np.array([[1.0 - eps, 0.5, 0.5]])
        grid = cic_deposit(x, np.array([1.0]), 8)
        assert grid.sum() == pytest.approx(1.0, rel=1e-14)
        # the deposit straddles the seam: cells 7 and 0 in x
        assert grid[7, 4, 4] > 0 and grid[0, 4, 4] > 0

    def test_mixed_mass_adjointness(self, impl):
        """sum_p m_p f(x_p) == sum_c f_c rho_c for a zoom-style mass mix."""
        rng = np.random.default_rng(17)
        n = 8
        x, mass = seeded_cloud(npart=500, seed=17, mixed=True)
        field = rng.standard_normal((n, n, n))
        lhs = np.sum(mass * cic_interpolate(field, x))
        rhs = np.sum(field * cic_deposit(x, mass, n))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_precomputed_weights_match_implicit(self, impl):
        x, mass = seeded_cloud(npart=300, seed=23)
        n = 8
        w = cic_weights(x, n)
        assert np.array_equal(cic_deposit(x, mass, n, weights=w),
                              cic_deposit(x, mass, n))
        field = np.random.default_rng(1).random((n, n, n, 3))
        assert np.array_equal(cic_interpolate(field, x, weights=w),
                              cic_interpolate(field, x))

    def test_drift_wraps_into_unit_box(self, impl):
        parts = ParticleSet.uniform_lattice(4)
        parts.p = 80.0 * np.random.default_rng(4).standard_normal(parts.p.shape)
        lf = Leapfrog(EDS, GravitySolver(EDS, 4))
        maxd = lf.drift(parts, 0.5, 0.05)
        assert maxd > 1.0          # many particles crossed the box
        parts.validate()           # in [0, 1), finite


class TestFoFDeterminism:
    def test_labels_are_first_occurrence_canonical(self, impl):
        rng = np.random.default_rng(31)
        x = rng.random((800, 3))
        labels = friends_of_friends(x, 0.03)
        seen = {}
        for lab in labels:
            if lab not in seen:
                assert lab == len(seen)   # new labels appear in order
                seen[lab] = True

    def test_label_permutation_determinism(self, impl):
        """Permuting the particles permutes the partition, not the groups."""
        rng = np.random.default_rng(33)
        x = rng.random((600, 3))
        labels = friends_of_friends(x, 0.04)
        perm = rng.permutation(len(x))
        labels_perm = friends_of_friends(x[perm], 0.04)
        # same partition: canonicalised labels of the permuted run match
        # the canonicalised permutation of the original labels
        assert np.array_equal(labels_perm, _canonical_labels(labels[perm]))

    def test_canonical_labels_helper(self):
        got = _canonical_labels(np.array([7, 7, 2, 9, 2, 7]))
        assert np.array_equal(got, [0, 0, 1, 2, 1, 0])


class TestEnergyDriftPin:
    def test_seeded_32cubed_energy_drift(self, impl):
        """Layzer-Irvine drift pin on a seeded 32^3 run (both impls)."""
        ic = make_single_level_ic(32, 100.0, EDS, a_start=0.05, seed=42)
        solver = GravitySolver(EDS, 32)
        lf = Leapfrog(EDS, solver)
        monitor = LayzerIrvineMonitor(solver)
        parts = ic.particles.copy()
        monitor.sample(0.05, parts)
        schedule = EDS.aexp_schedule(0.05, 0.4, 12)
        lf.run(parts, schedule, callback=monitor.sample)
        # linear-regime evolution: a few percent is healthy, anything
        # beyond ~10% means a kernel broke the integrator
        assert monitor.relative_drift() < 0.1
        parts.validate()
