"""Unit tests for the run driver and the zoom machinery."""

import numpy as np
import pytest

from repro.grafic import ZoomRegion, make_single_level_ic
from repro.ramses import (
    EDS,
    LCDM_WMAP,
    ParticleSet,
    RamsesRun,
    RunConfig,
    ZoomSpec,
    config_from_namelist,
    lagrangian_positions_of_ids,
    lagrangian_region,
    parse_namelist,
    read_snapshot,
    run_zoom,
)


@pytest.fixture(scope="module")
def small_run():
    ic = make_single_level_ic(16, 100.0, LCDM_WMAP, a_start=0.05, seed=42)
    cfg = RunConfig(a_end=0.6, n_steps=12, output_aexp=(0.3, 0.6))
    return ic, RamsesRun(ic, cfg).run()


class TestRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(n_steps=0)
        with pytest.raises(ValueError):
            RunConfig(output_aexp=())
        with pytest.raises(ValueError):
            RunConfig(output_aexp=(0.0,))
        with pytest.raises(ValueError):
            RunConfig(ncpu=0)

    def test_from_namelist(self):
        nml = parse_namelist("""
&RUN_PARAMS
nstepmax=40
aexp_end=0.8
ncpu=4
/
&OUTPUT_PARAMS
aout=0.4,0.8
/
""")
        cfg = config_from_namelist(nml)
        assert cfg.n_steps == 40
        assert cfg.a_end == 0.8
        assert cfg.ncpu == 4
        assert cfg.output_aexp == (0.4, 0.8)


class TestSchedule:
    def test_outputs_included_exactly(self):
        ic = make_single_level_ic(8, 50.0, EDS, a_start=0.1, seed=0)
        run = RamsesRun(ic, RunConfig(a_end=1.0, n_steps=10,
                                      output_aexp=(0.37, 1.0)))
        sched = run.schedule()
        assert np.any(np.isclose(sched, 0.37))
        assert sched[0] == pytest.approx(0.1)
        assert sched[-1] == pytest.approx(1.0)

    def test_default_grid_matches_lattice(self):
        ic = make_single_level_ic(16, 50.0, EDS, a_start=0.1, seed=0)
        run = RamsesRun(ic, RunConfig())
        assert run.n_grid == 16


class TestRun:
    def test_snapshots_at_requested_epochs(self, small_run):
        _, result = small_run
        assert [s.aexp for s in result.snapshots] == pytest.approx([0.3, 0.6])
        assert [s.output_number for s in result.snapshots] == [1, 2]

    def test_structure_grows(self, small_run):
        _, result = small_run
        assert result.snapshots[1].rms_delta > result.snapshots[0].rms_delta

    def test_particles_conserved(self, small_run):
        ic, result = small_run
        for snap in result.snapshots:
            assert len(snap.particles) == len(ic.particles)
            assert snap.particles.total_mass == pytest.approx(1.0)
            snap.particles.validate()

    def test_imbalance_history_near_one(self, small_run):
        _, result = small_run
        assert all(1.0 <= im < 2.0 for im in result.imbalance_history)

    def test_projected_density_normalized(self, small_run):
        _, result = small_run
        proj = result.final.projected_density(n=16)
        assert proj.shape == (16, 16)
        assert proj.mean() == pytest.approx(1.0)

    def test_snapshot_lookup(self, small_run):
        _, result = small_run
        assert result.snapshot_at(0.3).output_number == 1
        with pytest.raises(KeyError):
            result.snapshot_at(0.99)

    def test_output_dir_writes_readable_snapshots(self, tmp_path):
        ic = make_single_level_ic(8, 50.0, EDS, a_start=0.1, seed=1)
        cfg = RunConfig(a_end=0.5, n_steps=4, output_aexp=(0.5,), ncpu=2)
        RamsesRun(ic, cfg).run(output_dir=str(tmp_path))
        header, parts = read_snapshot(str(tmp_path / "output_00001"), 1)
        assert header.ncpu == 2
        assert len(parts) == 8 ** 3


class TestLagrangian:
    def test_positions_of_ids_inverse_of_lattice(self):
        parts = ParticleSet.uniform_lattice(8)
        q = lagrangian_positions_of_ids(parts.ids, 8)
        assert np.allclose(q, parts.x)

    def test_bad_ids_rejected(self):
        with pytest.raises(ValueError):
            lagrangian_positions_of_ids(np.array([1000]), 8)

    def test_region_contains_all_members(self):
        ids = np.array([0, 1, 8, 9, 64])   # a compact id clump on an 8-lattice
        region = lagrangian_region(ids, 8, padding=1.0)
        q = lagrangian_positions_of_ids(ids, 8)
        assert region.contains(q).all()

    def test_region_periodic_wraparound(self):
        """A clump straddling the box edge gets a compact region."""
        # lattice sites near x=0 and x=1 (ix = 0 and 7)
        ids = np.array([0, 7 * 64])
        region = lagrangian_region(ids, 8, padding=1.0)
        assert region.half_size < 0.3


class TestZoom:
    def test_zoom_run_end_to_end(self):
        parent_ic = make_single_level_ic(8, 50.0, LCDM_WMAP, a_start=0.05,
                                         seed=3)
        spec = ZoomSpec(center=(0.5, 0.5, 0.5), n_levels=1,
                        region_half_size=0.2, n_coarse=8, boxsize_mpc_h=50.0)
        cfg = RunConfig(a_end=0.3, n_steps=6, output_aexp=(0.3,))
        result = run_zoom(parent_ic, spec, cfg)
        snap = result.final
        levels = np.unique(snap.particles.level)
        assert list(levels) == [0, 1]
        # fine particles are 8x lighter
        m0 = snap.particles.mass[snap.particles.level == 0].min()
        m1 = snap.particles.mass[snap.particles.level == 1].max()
        assert m0 / m1 == pytest.approx(8.0)

    def test_zoom_spec_validation(self):
        with pytest.raises(ValueError):
            ZoomSpec(center=(0.5, 0.5, 0.5), n_levels=0,
                     region_half_size=0.2, n_coarse=8, boxsize_mpc_h=50.0)

    def test_zoom_region_validation(self):
        with pytest.raises(ValueError):
            ZoomRegion((0.5, 0.5, 0.5), half_size=0.7)
