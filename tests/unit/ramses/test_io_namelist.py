"""Unit tests for Fortran-record snapshot I/O and the namelist parser."""

import io

import numpy as np
import pytest

from repro.ramses import (
    FortranRecordFile,
    ParticleSet,
    SnapshotHeader,
    format_namelist,
    parse_namelist,
    read_snapshot,
    snapshot_paths,
    write_snapshot,
)


class TestFortranRecords:
    def test_roundtrip_bytes(self):
        buf = io.BytesIO()
        f = FortranRecordFile(buf)
        f.write_record(b"hello")
        f.write_record(b"")
        buf.seek(0)
        r = FortranRecordFile(buf)
        assert r.read_record() == b"hello"
        assert r.read_record() == b""

    def test_roundtrip_arrays(self):
        buf = io.BytesIO()
        f = FortranRecordFile(buf)
        f.write_ints(1, 2, 3)
        f.write_doubles(1.5, -2.5)
        f.write_record(np.arange(5, dtype="<i8"))
        buf.seek(0)
        r = FortranRecordFile(buf)
        assert list(r.read_ints()) == [1, 2, 3]
        assert list(r.read_doubles()) == [1.5, -2.5]
        assert list(r.read_longs()) == [0, 1, 2, 3, 4]

    def test_marker_framing(self):
        """Each record is framed by 4-byte length markers, Fortran style."""
        buf = io.BytesIO()
        FortranRecordFile(buf).write_record(b"abcd")
        raw = buf.getvalue()
        assert raw[:4] == (4).to_bytes(4, "little")
        assert raw[-4:] == (4).to_bytes(4, "little")
        assert raw[4:8] == b"abcd"

    def test_corrupt_tail_marker_detected(self):
        buf = io.BytesIO()
        FortranRecordFile(buf).write_record(b"abcd")
        raw = bytearray(buf.getvalue())
        raw[-1] ^= 0xFF
        with pytest.raises(IOError, match="disagree"):
            FortranRecordFile(io.BytesIO(bytes(raw))).read_record()

    def test_truncated_payload_detected(self):
        buf = io.BytesIO()
        FortranRecordFile(buf).write_record(b"abcdef")
        truncated = buf.getvalue()[:7]
        with pytest.raises(IOError):
            FortranRecordFile(io.BytesIO(truncated)).read_record()

    def test_eof(self):
        with pytest.raises(EOFError):
            FortranRecordFile(io.BytesIO(b"")).read_record()


class TestSnapshot:
    def make_parts(self, n=5):
        parts = ParticleSet.uniform_lattice(n)
        rng = np.random.default_rng(0)
        parts.p[:] = rng.standard_normal(parts.p.shape)
        return parts

    def header(self, parts, ncpu=3):
        return SnapshotHeader(ncpu=ncpu, ndim=3, npart=len(parts), aexp=0.5,
                              omega_m=0.27, omega_l=0.73, h0=71.0,
                              boxlen_mpc_h=100.0, levelmin=4, levelmax=8,
                              output_number=7)

    def test_roundtrip(self, tmp_path):
        parts = self.make_parts()
        header = self.header(parts)
        files = write_snapshot(str(tmp_path), header, parts)
        assert len(files) == 1 + 3     # info + 3 cpu files
        header2, parts2 = read_snapshot(str(tmp_path), 7)
        assert header2.npart == len(parts)
        assert header2.aexp == pytest.approx(0.5)
        assert header2.levelmax == 8
        order = np.argsort(parts2.ids)
        orig = np.argsort(parts.ids)
        assert np.allclose(parts2.x[order], parts.x[orig])
        assert np.allclose(parts2.p[order], parts.p[orig])
        assert np.allclose(parts2.mass[order], parts.mass[orig])

    def test_pieces_partition_particles(self, tmp_path):
        parts = self.make_parts()
        header = self.header(parts, ncpu=4)
        write_snapshot(str(tmp_path), header, parts)
        total = 0
        for path in snapshot_paths(str(tmp_path), 7, 4):
            with open(path, "rb") as fh:
                rec = FortranRecordFile(fh)
                rec.read_ints()  # ncpu
                rec.read_ints()  # ndim
                total += int(rec.read_ints()[0])
        assert total == len(parts)

    def test_header_validation(self):
        with pytest.raises(ValueError):
            SnapshotHeader(ncpu=0, ndim=3, npart=1, aexp=1.0, omega_m=0.3,
                           omega_l=0.7, h0=70, boxlen_mpc_h=100,
                           levelmin=4, levelmax=6).validate()

    def test_npart_mismatch_rejected(self, tmp_path):
        parts = self.make_parts()
        header = self.header(parts)
        header.npart = 1
        with pytest.raises(ValueError):
            write_snapshot(str(tmp_path), header, parts)


class TestNamelist:
    SAMPLE = """
! RAMSES run parameters
&RUN_PARAMS
cosmo=.true.
pic=.true.
nstepmax=80
aexp_end=1.0
/

&OUTPUT_PARAMS
aout=0.3,0.5,1.0
tend=1d2
title='zoom run ''A'''
/
"""

    def test_parse_groups(self):
        nml = parse_namelist(self.SAMPLE)
        assert set(nml) == {"RUN_PARAMS", "OUTPUT_PARAMS"}

    def test_parse_types(self):
        nml = parse_namelist(self.SAMPLE)
        assert nml.get_param("run_params", "cosmo") is True
        assert nml.get_param("run_params", "nstepmax") == 80
        assert nml.get_param("run_params", "aexp_end") == 1.0
        assert nml.get_param("output_params", "aout") == [0.3, 0.5, 1.0]
        assert nml.get_param("output_params", "tend") == 100.0   # 1d2
        assert nml.get_param("output_params", "title") == "zoom run 'A'"

    def test_default_for_missing(self):
        nml = parse_namelist(self.SAMPLE)
        assert nml.get_param("run_params", "missing", 42) == 42

    def test_roundtrip(self):
        nml = parse_namelist(self.SAMPLE)
        text = format_namelist(nml)
        again = parse_namelist(text)
        assert again == nml

    def test_set_param(self):
        nml = parse_namelist(self.SAMPLE)
        nml.set_param("NEW_GROUP", "x", [1, 2])
        assert parse_namelist(format_namelist(nml)).get_param(
            "new_group", "x") == [1, 2]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_namelist("&G\nthis is not an assignment\n/")

    def test_param_outside_group_raises(self):
        with pytest.raises(ValueError):
            parse_namelist("x=1")

    def test_comments_stripped(self):
        nml = parse_namelist("&G\nx=5 ! inline comment\n/")
        assert nml.get_param("g", "x") == 5
