"""Unit + physics tests for the Layzer-Irvine energy diagnostics."""

import numpy as np
import pytest

from repro.grafic import make_single_level_ic
from repro.ramses import (
    EDS,
    LCDM_WMAP,
    GravitySolver,
    LayzerIrvineMonitor,
    Leapfrog,
    ParticleSet,
    kinetic_energy,
    potential_energy,
)


class TestEnergies:
    def test_kinetic_of_cold_lattice_is_zero(self):
        parts = ParticleSet.uniform_lattice(4)
        assert kinetic_energy(parts, 0.5) == 0.0

    def test_kinetic_scaling_with_a(self):
        parts = ParticleSet.uniform_lattice(4)
        parts.p[:] = 1.0
        # T = 1/2 sum m (p/a)^2: halving a quadruples T
        assert (kinetic_energy(parts, 0.5)
                == pytest.approx(4 * kinetic_energy(parts, 1.0)))

    def test_kinetic_invalid_a(self):
        with pytest.raises(ValueError):
            kinetic_energy(ParticleSet.uniform_lattice(2), 0.0)

    def test_potential_of_uniform_lattice_is_zero(self):
        parts = ParticleSet.uniform_lattice(8)
        solver = GravitySolver(EDS, 8)
        assert potential_energy(parts, solver, 1.0) == pytest.approx(0.0,
                                                                     abs=1e-12)

    def test_potential_negative_for_clustered(self):
        rng = np.random.default_rng(0)
        x = np.mod(0.5 + 0.02 * rng.standard_normal((512, 3)), 1.0)
        parts = ParticleSet(x, np.zeros_like(x), np.full(512, 1 / 512),
                            np.arange(512, dtype=np.int64),
                            np.zeros(512, dtype=np.int16))
        solver = GravitySolver(EDS, 16)
        assert potential_energy(parts, solver, 1.0) < 0


class TestLayzerIrvine:
    def run_monitored(self, cosmo, a_end, n_steps=64, n=16, seed=3):
        ic = make_single_level_ic(n, 100.0, cosmo, a_start=0.05, seed=seed)
        parts = ic.particles.copy()
        solver = GravitySolver(cosmo, n)
        leap = Leapfrog(cosmo, solver)
        monitor = LayzerIrvineMonitor(solver)
        monitor.sample(0.05, parts)
        leap.run(parts, cosmo.aexp_schedule(0.05, a_end, n_steps),
                 callback=monitor.sample)
        return monitor

    def test_quasi_linear_regime_tight_conservation(self):
        # at a=0.2 the 16^3/100 Mpc/h box is already mildly nonlinear
        monitor = self.run_monitored(LCDM_WMAP, a_end=0.2)
        assert monitor.relative_drift() < 0.08

    @pytest.mark.parametrize("cosmo", [EDS, LCDM_WMAP], ids=["EdS", "LCDM"])
    def test_nonlinear_regime_pm_grade_conservation(self, cosmo):
        """A one-level PM code holds Layzer-Irvine to ~10% through collapse."""
        monitor = self.run_monitored(cosmo, a_end=1.0, n_steps=96)
        assert monitor.relative_drift() < 0.15

    def test_histories_shapes(self):
        monitor = self.run_monitored(LCDM_WMAP, a_end=0.3, n_steps=12)
        assert len(monitor.kinetic_history) == 13
        assert len(monitor.invariants) == 13
        assert np.all(monitor.kinetic_history >= 0)

    def test_system_approaches_virial(self):
        """By a=1 collapse is underway: -2T/U within a sane bracket."""
        monitor = self.run_monitored(EDS, a_end=1.0, n_steps=96)
        ratio = monitor.virial_ratio()
        assert 0.3 < ratio < 3.0

    def test_drift_zero_with_single_sample(self):
        solver = GravitySolver(EDS, 8)
        monitor = LayzerIrvineMonitor(solver)
        monitor.sample(0.1, ParticleSet.uniform_lattice(8))
        assert monitor.relative_drift() == 0.0
