"""Unit tests for the particle container."""

import numpy as np
import pytest

from repro.ramses import ParticleSet


class TestConstruction:
    def test_uniform_lattice(self):
        parts = ParticleSet.uniform_lattice(4)
        assert len(parts) == 64
        assert parts.total_mass == pytest.approx(1.0)
        assert np.all(parts.p == 0)
        assert len(np.unique(parts.ids)) == 64
        # lattice points at cell centres
        assert parts.x.min() == pytest.approx(0.5 / 4)
        assert parts.x.max() == pytest.approx(3.5 / 4)

    def test_empty(self):
        parts = ParticleSet.empty()
        assert len(parts) == 0
        assert parts.total_mass == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 2)), np.zeros((3, 3)), np.zeros(3),
                        np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int16))
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((3, 3)), np.zeros((3, 3)), np.zeros(4),
                        np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int16))

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((1, 3)), np.zeros((1, 3)), np.array([-1.0]),
                        np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int16))


class TestOperations:
    def test_copy_is_deep(self):
        a = ParticleSet.uniform_lattice(2)
        b = a.copy()
        b.x += 0.01
        assert not np.allclose(a.x, b.x)

    def test_select_mask(self):
        parts = ParticleSet.uniform_lattice(4)
        sel = parts.select(parts.x[:, 0] < 0.5)
        assert len(sel) == 32
        assert np.all(sel.x[:, 0] < 0.5)

    def test_concatenate_preserves_mass(self):
        a = ParticleSet.uniform_lattice(2)
        b = ParticleSet.uniform_lattice(4)
        both = ParticleSet.concatenate([a, b])
        assert len(both) == 8 + 64
        assert both.total_mass == pytest.approx(2.0)

    def test_concatenate_empty_list(self):
        assert len(ParticleSet.concatenate([])) == 0

    def test_wrap(self):
        parts = ParticleSet.uniform_lattice(2)
        parts.x += 0.9
        parts.wrap()
        assert np.all((parts.x >= 0) & (parts.x < 1))

    def test_peculiar_velocity(self):
        parts = ParticleSet.uniform_lattice(2)
        parts.p[:] = 1.0
        assert np.allclose(parts.peculiar_velocity(0.5), 2.0)
        with pytest.raises(ValueError):
            parts.peculiar_velocity(0.0)


class TestValidate:
    def test_valid_set_passes(self):
        ParticleSet.uniform_lattice(3).validate()

    def test_unwrapped_positions_fail(self):
        parts = ParticleSet.uniform_lattice(2)
        parts.x[0, 0] = 1.5
        with pytest.raises(ValueError, match="wrap"):
            parts.validate()

    def test_nan_fails(self):
        parts = ParticleSet.uniform_lattice(2)
        parts.p[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            parts.validate()

    def test_duplicate_ids_fail(self):
        parts = ParticleSet.uniform_lattice(2)
        parts.ids[1] = parts.ids[0]
        with pytest.raises(ValueError, match="duplicate"):
            parts.validate()

    def test_repr_contains_counts(self):
        text = repr(ParticleSet.uniform_lattice(2))
        assert "N=8" in text
