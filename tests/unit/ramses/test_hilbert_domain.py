"""Unit tests for Peano-Hilbert keys and the domain decomposition."""

import numpy as np
import pytest

from repro.ramses import (
    DomainDecomposition,
    decompose,
    exchange_matrix,
    hilbert_decode,
    hilbert_encode,
    positions_to_keys,
    slab_ranks,
)


class TestHilbertCurve:
    @pytest.mark.parametrize("level", [1, 2, 3, 6, 10])
    def test_roundtrip(self, level):
        rng = np.random.default_rng(level)
        n = 1 << level
        ix = rng.integers(0, n, 500)
        iy = rng.integers(0, n, 500)
        iz = rng.integers(0, n, 500)
        jx, jy, jz = hilbert_decode(hilbert_encode(ix, iy, iz, level), level)
        assert np.array_equal(ix, jx)
        assert np.array_equal(iy, jy)
        assert np.array_equal(iz, jz)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_bijective_on_full_grid(self, level):
        n = 1 << level
        g = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
        keys = hilbert_encode(g[0].ravel(), g[1].ravel(), g[2].ravel(), level)
        assert len(np.unique(keys)) == n ** 3
        assert keys.min() == 0 and keys.max() == n ** 3 - 1

    def test_locality_unit_steps(self):
        """Consecutive keys differ by exactly one cell face (Hilbert property)."""
        level = 4
        keys = np.arange((1 << level) ** 3, dtype=np.int64)
        x, y, z = hilbert_decode(keys, level)
        manhattan = (np.abs(np.diff(x)) + np.abs(np.diff(y))
                     + np.abs(np.diff(z)))
        assert np.all(manhattan == 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.array([4]), np.array([0]), np.array([0]), 2)
        with pytest.raises(ValueError):
            hilbert_decode(np.array([-1]), 2)
        with pytest.raises(ValueError):
            hilbert_encode(np.array([0]), np.array([0]), np.array([0]), 0)

    def test_positions_to_keys(self):
        x = np.array([[0.01, 0.01, 0.01], [0.99, 0.99, 0.99]])
        keys = positions_to_keys(x, 3)
        assert keys.shape == (2,)
        assert keys[0] != keys[1]


class TestDecomposition:
    def make_points(self, n=5000, seed=0):
        rng = np.random.default_rng(seed)
        # clustered + uniform mix, like a cosmological snapshot
        uniform = rng.random((n // 2, 3))
        cluster = 0.5 + 0.05 * rng.standard_normal((n // 2, 3))
        return np.mod(np.vstack([uniform, cluster]), 1.0)

    def test_equal_count_split(self):
        x = self.make_points()
        dd = decompose(x, ncpu=8)
        counts = dd.counts(x)
        assert counts.sum() == len(x)
        assert counts.max() / counts.mean() < 1.3

    def test_weighted_split(self):
        x = self.make_points()
        w = np.ones(len(x))
        w[:100] = 100.0   # a few very expensive particles
        dd = decompose(x, ncpu=4, weights=w)
        assert dd.load_imbalance(x, weights=w) < 1.6

    def test_single_cpu(self):
        x = self.make_points(n=100)
        dd = decompose(x, ncpu=1)
        assert np.all(dd.rank_of_positions(x) == 0)

    def test_bound_keys_monotone(self):
        dd = decompose(self.make_points(), ncpu=16)
        assert np.all(np.diff(dd.bound_key) >= 0)
        assert dd.bound_key[0] == 0

    def test_rank_assignment_consistent_with_bounds(self):
        x = self.make_points(n=1000)
        dd = decompose(x, ncpu=4)
        keys = positions_to_keys(x, dd.level)
        ranks = dd.rank_of_keys(keys)
        for r in range(4):
            sel = keys[ranks == r]
            if len(sel):
                assert sel.min() >= dd.bound_key[r]
                assert sel.max() < dd.bound_key[r + 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose(np.zeros((1, 3)), ncpu=0)
        with pytest.raises(ValueError):
            DomainDecomposition(2, 3, np.array([0, 5], dtype=np.int64))
        with pytest.raises(ValueError):
            decompose(np.random.default_rng(0).random((10, 3)), 2,
                      weights=-np.ones(10))


class TestLocalityMetric:
    def test_hilbert_beats_slab_on_communication(self):
        """The point of Peano-Hilbert ordering: less boundary traffic than
        slabs for the same rank count (§3's mesh partitioning strategy)."""
        rng = np.random.default_rng(1)
        x = rng.random((8000, 3))
        ncpu = 8
        hilbert = decompose(x, ncpu).rank_of_positions(x)
        slab = slab_ranks(x, ncpu)
        comm_h = exchange_matrix(hilbert, x, ncpu).sum()
        comm_s = exchange_matrix(slab, x, ncpu).sum()
        assert comm_h < comm_s

    def test_exchange_matrix_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(2)
        x = rng.random((2000, 3))
        ranks = decompose(x, 4).rank_of_positions(x)
        mat = exchange_matrix(ranks, x, 4)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_slab_ranks_range(self):
        x = np.array([[0.0, 0.5, 0.5], [0.999, 0.5, 0.5]])
        ranks = slab_ranks(x, 4)
        assert list(ranks) == [0, 3]
