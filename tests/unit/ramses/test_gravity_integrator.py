"""Unit tests for the PM gravity solver and KDK integrator (physics)."""

import numpy as np
import pytest

from repro.ramses import EDS, LCDM_WMAP, GravitySolver, Leapfrog, ParticleSet
from repro.grafic import make_single_level_ic
from repro.grafic.zeldovich import growing_mode_momentum_factor


def plane_wave(n=32, amplitude=0.3 / (2 * np.pi), a0=0.05):
    """Particles on a lattice with a 1-d growing-mode displacement."""
    parts = ParticleSet.uniform_lattice(n)
    q = parts.x.copy()
    psi = np.zeros_like(q)
    psi[:, 0] = amplitude * np.sin(2 * np.pi * q[:, 0])
    parts.x = np.mod(q + a0 * psi, 1.0)   # D(a)=a in EdS
    parts.p = growing_mode_momentum_factor(EDS, a0) * psi
    return parts, q, psi


class TestGravitySolver:
    def test_uniform_distribution_no_force(self):
        parts = ParticleSet.uniform_lattice(8)
        solver = GravitySolver(EDS, 8)
        result = solver.accelerations(parts.x, parts.mass, 0.5)
        assert np.allclose(result.acc, 0.0, atol=1e-10)

    def test_plane_wave_linear_force(self):
        """PM force matches -grad(phi) = 1.5 psi for a growing mode (EdS)."""
        parts, q, psi = plane_wave()
        solver = GravitySolver(EDS, 32)
        result = solver.accelerations(parts.x, parts.mass, 0.05)
        expected = 1.5 * psi[:, 0]
        ratio = np.dot(result.acc[:, 0], expected) / np.dot(expected, expected)
        assert ratio == pytest.approx(1.0, abs=0.03)

    def test_force_antisymmetry_two_clumps(self):
        """Two equal clumps attract with (approximately) opposite forces."""
        x = np.array([[0.4, 0.5, 0.5], [0.6, 0.5, 0.5]])
        mass = np.array([0.5, 0.5])
        solver = GravitySolver(EDS, 32)
        result = solver.accelerations(x, mass, 1.0)
        # net momentum change ~ 0 and forces point towards each other
        assert result.acc[0, 0] > 0 > result.acc[1, 0]
        assert abs(result.acc[:, 0].sum()) < 1e-8 * abs(result.acc[0, 0])

    def test_source_scales_inverse_a(self):
        parts, _, _ = plane_wave()
        solver = GravitySolver(EDS, 32)
        acc_a1 = solver.accelerations(parts.x, parts.mass, 1.0).acc
        acc_a05 = solver.accelerations(parts.x, parts.mass, 0.5).acc
        assert np.allclose(acc_a05, 2.0 * acc_a1, rtol=1e-10)

    def test_return_fields_flag(self):
        parts, _, _ = plane_wave(n=8)
        solver = GravitySolver(EDS, 8)
        with_fields = solver.accelerations(parts.x, parts.mass, 1.0,
                                           return_fields=True)
        assert with_fields.phi.shape == (8, 8, 8)
        assert with_fields.delta.shape == (8, 8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            GravitySolver(EDS, 1)
        solver = GravitySolver(EDS, 8)
        parts = ParticleSet.uniform_lattice(4)
        with pytest.raises(ValueError):
            solver.accelerations(parts.x, parts.mass, 0.0)


class TestLeapfrog:
    def test_plane_wave_tracks_zeldovich(self):
        """EdS plane wave is an exact solution pre-shell-crossing; PM should
        track it to ~10% of the displacement amplitude."""
        parts, q, psi = plane_wave()
        a0, a1 = 0.05, 0.5
        leap = Leapfrog(EDS, GravitySolver(EDS, 32))
        leap.run(parts, EDS.aexp_schedule(a0, a1, 64))
        x_pred = np.mod(q + a1 * psi, 1.0)
        d = parts.x - x_pred
        d -= np.round(d)
        max_disp = a1 * np.abs(psi).max()
        assert np.abs(d).max() < 0.15 * max_disp

    @pytest.mark.parametrize("cosmo", [EDS, LCDM_WMAP], ids=["EdS", "LCDM"])
    def test_linear_growth_rate(self, cosmo):
        """delta_rms grows by D(a1)/D(a0) in the linear regime (to ~3%)."""
        ic = make_single_level_ic(32, 200.0, cosmo, a_start=0.02, seed=7)
        parts = ic.particles.copy()
        solver = GravitySolver(cosmo, 32)
        leap = Leapfrog(cosmo, solver)
        d0 = solver.density(parts.x, parts.mass).std()
        a1 = 0.1
        leap.run(parts, cosmo.aexp_schedule(0.02, a1, 32))
        d1 = solver.density(parts.x, parts.mass).std()
        expected = (cosmo.growth_factor(a1) / cosmo.growth_factor(0.02))
        assert d1 / d0 == pytest.approx(expected, rel=0.03)

    def test_step_statistics_recorded(self):
        parts, _, _ = plane_wave(n=8)
        leap = Leapfrog(EDS, GravitySolver(EDS, 8))
        stats = leap.run(parts, EDS.aexp_schedule(0.05, 0.1, 4))
        assert len(stats) == 4
        assert all(s.a_after > s.a_before for s in stats)
        assert all(s.max_disp >= 0 for s in stats)

    def test_schedule_validation(self):
        parts, _, _ = plane_wave(n=8)
        leap = Leapfrog(EDS, GravitySolver(EDS, 8))
        with pytest.raises(ValueError):
            leap.run(parts, np.array([0.5]))
        with pytest.raises(ValueError):
            leap.run(parts, np.array([0.5, 0.4]))
        with pytest.raises(ValueError):
            leap.step(parts, 0.5, 0.5)

    def test_callback_invoked(self):
        parts, _, _ = plane_wave(n=8)
        leap = Leapfrog(EDS, GravitySolver(EDS, 8))
        seen = []
        leap.run(parts, EDS.aexp_schedule(0.05, 0.1, 3),
                 callback=lambda a, p: seen.append(a))
        assert len(seen) == 3

    def test_momentum_conservation_over_run(self):
        """Total momentum stays ~0 for a zero-momentum initial state."""
        ic = make_single_level_ic(16, 100.0, EDS, a_start=0.05, seed=3)
        parts = ic.particles.copy()
        p_total0 = np.abs((parts.p * parts.mass[:, None]).sum(axis=0)).max()
        leap = Leapfrog(EDS, GravitySolver(EDS, 16))
        leap.run(parts, EDS.aexp_schedule(0.05, 0.5, 16))
        p_total1 = np.abs((parts.p * parts.mass[:, None]).sum(axis=0)).max()
        p_typical = np.abs(parts.p).mean()
        assert p_total1 < 1e-6 * p_typical + p_total0 * 2
