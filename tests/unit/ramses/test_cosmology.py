"""Unit tests for the Friedmann background and growth factor."""

import numpy as np
import pytest

from repro.ramses import Cosmology, EDS, LCDM_WMAP


class TestHubble:
    def test_h_of_one_is_one(self):
        for cosmo in (EDS, LCDM_WMAP):
            assert float(cosmo.hubble(1.0)) == pytest.approx(1.0)

    def test_eds_scaling(self):
        a = np.array([0.25, 0.5, 1.0])
        assert np.allclose(EDS.hubble(a), a ** -1.5)

    def test_lcdm_asymptotes_to_lambda(self):
        assert float(LCDM_WMAP.hubble(100.0)) == pytest.approx(
            np.sqrt(LCDM_WMAP.omega_l), rel=1e-3)

    def test_nonpositive_a_rejected(self):
        with pytest.raises(ValueError):
            EDS.hubble(0.0)

    def test_omega_k_flat(self):
        assert LCDM_WMAP.omega_k == pytest.approx(0.0)

    def test_omega_m_evolution(self):
        # matter dominates early even in LCDM
        assert float(LCDM_WMAP.omega_m_a(0.01)) == pytest.approx(1.0, abs=1e-3)
        assert float(LCDM_WMAP.omega_m_a(1.0)) == pytest.approx(0.27)


class TestAges:
    def test_eds_age_analytic(self):
        # EdS: t(a) = (2/3) a^{3/2}
        for a in (0.25, 0.5, 1.0):
            assert EDS.age(a) == pytest.approx(2.0 / 3.0 * a ** 1.5, rel=1e-6)

    def test_age_monotone(self):
        ages = [LCDM_WMAP.age(a) for a in (0.1, 0.5, 1.0)]
        assert ages == sorted(ages)

    def test_a_of_t_inverts_age(self):
        for a in (0.2, 0.7, 1.0):
            t = LCDM_WMAP.age(a)
            assert LCDM_WMAP.a_of_t(t) == pytest.approx(a, rel=1e-8)

    def test_a_of_t_out_of_range(self):
        with pytest.raises(ValueError):
            LCDM_WMAP.a_of_t(-1.0)

    def test_lookback(self):
        assert LCDM_WMAP.lookback(1.0) == pytest.approx(0.0, abs=1e-12)
        assert LCDM_WMAP.lookback(0.5) > 0


class TestGrowth:
    def test_eds_growth_is_a(self):
        a = np.array([0.1, 0.35, 0.8, 1.0])
        assert np.allclose(EDS.growth_factor(a), a, rtol=1e-5)

    def test_normalized_at_one(self):
        for cosmo in (EDS, LCDM_WMAP):
            assert float(cosmo.growth_factor(1.0)) == pytest.approx(1.0)

    def test_lcdm_growth_suppressed(self):
        """Lambda suppresses late growth: D(a) > a for a < 1."""
        a = 0.5
        assert float(LCDM_WMAP.growth_factor(a)) > a

    def test_growth_rate_positive(self):
        for a in (0.1, 0.5, 1.0):
            assert float(LCDM_WMAP.growth_rate(a)) > 0

    def test_eds_growth_rate_unity(self):
        assert float(EDS.growth_rate(0.5)) == pytest.approx(1.0, rel=1e-3)

    def test_f_growth_matches_55_approximation(self):
        for a in (0.3, 0.6, 1.0):
            f = float(LCDM_WMAP.f_growth(a))
            approx = float(LCDM_WMAP.omega_m_a(a)) ** 0.55
            assert f == pytest.approx(approx, rel=0.03)

    def test_scalar_in_scalar_out(self):
        assert isinstance(EDS.growth_factor(0.5), float)


class TestSchedule:
    def test_log_spacing(self):
        sched = EDS.aexp_schedule(0.1, 1.0, 10, spacing="log")
        ratios = sched[1:] / sched[:-1]
        assert np.allclose(ratios, ratios[0])
        assert sched[0] == pytest.approx(0.1)
        assert sched[-1] == pytest.approx(1.0)

    def test_linear_spacing(self):
        sched = EDS.aexp_schedule(0.1, 1.0, 9, spacing="linear")
        assert np.allclose(np.diff(sched), 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EDS.aexp_schedule(1.0, 0.5, 10)
        with pytest.raises(ValueError):
            EDS.aexp_schedule(0.1, 1.0, 0)
        with pytest.raises(ValueError):
            EDS.aexp_schedule(0.1, 1.0, 4, spacing="cubic")


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Cosmology(omega_m=0.0)
        with pytest.raises(ValueError):
            Cosmology(h=-1)
