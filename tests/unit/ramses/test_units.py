"""Unit tests for the unit system."""

import pytest

from repro.ramses import Units
from repro.ramses.units import RHO_CRIT_MSUN_H2_MPC3


class TestLengths:
    def test_roundtrip(self):
        u = Units(100.0)
        assert u.to_mpc_h(0.25) == 25.0
        assert u.from_mpc_h(25.0) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            Units(-1.0)
        with pytest.raises(ValueError):
            Units(100.0, omega_m=2.0)


class TestMasses:
    def test_total_box_mass(self):
        u = Units(100.0, omega_m=0.3)
        expected = 0.3 * RHO_CRIT_MSUN_H2_MPC3 * 1e6
        assert u.total_mass_msun_h == pytest.approx(expected)

    def test_particle_mass(self):
        u = Units(100.0, omega_m=0.3)
        assert (u.particle_mass_msun_h(128 ** 3) * 128 ** 3
                == pytest.approx(u.total_mass_msun_h))

    def test_particle_mass_scale_sane(self):
        """128^3 particles in 100 Mpc/h: ~3e10 Msun/h each (the paper's
        low-resolution run)."""
        u = Units(100.0, omega_m=0.27)
        m = u.particle_mass_msun_h(128 ** 3)
        assert 1e10 < m < 1e11

    def test_zero_particles_rejected(self):
        with pytest.raises(ValueError):
            Units(100.0).particle_mass_msun_h(0)


class TestVelocities:
    def test_momentum_to_km_s(self):
        u = Units(100.0)
        # p = a^2 dx/dt; v_pec = p/a in box*H0 units
        v = u.momentum_to_km_s(0.01, a=0.5)
        assert v == pytest.approx(0.01 / 0.5 * 100.0 * 100.0)

    def test_invalid_a(self):
        with pytest.raises(ValueError):
            Units(100.0).momentum_to_km_s(1.0, a=0.0)


class TestTimes:
    def test_hubble_time_gyr(self):
        # 1/H0 for h=0.7: ~13.97 Gyr
        assert Units(100.0).hubble_time_gyr(h=0.7) == pytest.approx(13.97, rel=0.01)
