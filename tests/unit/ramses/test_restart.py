"""Unit tests for checkpoint/restart (RAMSES restart files)."""

import os

import numpy as np
import pytest

from repro.grafic import make_multi_level_ic, make_single_level_ic
from repro.ramses import LCDM_WMAP, RamsesRun, RunConfig, resume_run


def sorted_state(parts):
    order = np.argsort(parts.ids)
    return parts.x[order], parts.p[order], parts.mass[order]


class TestRestart:
    def test_restart_reproduces_straight_run_exactly(self, tmp_path):
        """Checkpoint at the schedule midpoint, resume: bitwise-identical
        trajectory (deterministic KDK on matching schedules)."""
        ic = make_single_level_ic(16, 100.0, LCDM_WMAP, a_start=0.05, seed=9)
        sched = LCDM_WMAP.aexp_schedule(0.05, 0.5, 16)
        a_mid = float(sched[8])

        straight = RamsesRun(ic, RunConfig(
            a_end=0.5, n_steps=16, output_aexp=(a_mid, 0.5))).run()

        RamsesRun(ic, RunConfig(a_end=a_mid, n_steps=8,
                                output_aexp=(a_mid,))).run(
            output_dir=str(tmp_path))
        resumed = resume_run(os.path.join(str(tmp_path), "output_00001"), 1,
                             RunConfig(a_end=0.5, n_steps=8,
                                       output_aexp=(0.5,))).run()

        xa, pa, ma = sorted_state(straight.final.particles)
        xb, pb, mb = sorted_state(resumed.final.particles)
        d = xa - xb
        d -= np.round(d)
        assert np.abs(d).max() < 1e-12
        assert np.abs(pa - pb).max() < 1e-12
        assert np.array_equal(ma, mb)

    def test_restart_preserves_cosmology_and_box(self, tmp_path):
        ic = make_single_level_ic(8, 50.0, LCDM_WMAP, a_start=0.1, seed=1)
        RamsesRun(ic, RunConfig(a_end=0.3, n_steps=4,
                                output_aexp=(0.3,))).run(
            output_dir=str(tmp_path))
        run = resume_run(os.path.join(str(tmp_path), "output_00001"), 1,
                         RunConfig(a_end=0.6, n_steps=4, output_aexp=(0.6,)))
        assert run.ic.a_start == pytest.approx(0.3)
        assert run.ic.boxsize_mpc_h == pytest.approx(50.0)
        assert run.ic.cosmology.omega_m == pytest.approx(LCDM_WMAP.omega_m)
        assert run.ic.cosmology.h == pytest.approx(LCDM_WMAP.h)

    def test_restart_zoom_run_keeps_fine_grid(self, tmp_path):
        """Multi-mass checkpoints resume at the finest lattice resolution."""
        ic = make_multi_level_ic(8, 50.0, LCDM_WMAP, (0.5, 0.5, 0.5),
                                 n_levels=1, region_half_size=0.2,
                                 a_start=0.05, seed=2)
        RamsesRun(ic, RunConfig(a_end=0.2, n_steps=3,
                                output_aexp=(0.2,))).run(
            output_dir=str(tmp_path))
        run = resume_run(os.path.join(str(tmp_path), "output_00001"), 1,
                         RunConfig(a_end=0.4, n_steps=3, output_aexp=(0.4,)))
        # finest species is the 16^3 lattice -> PM grid 16
        assert run.n_grid == 16
        result = run.run()
        assert result.final.particles.total_mass == pytest.approx(1.0)

    def test_resumed_run_continues_structure_growth(self, tmp_path):
        ic = make_single_level_ic(16, 100.0, LCDM_WMAP, a_start=0.05, seed=3)
        first = RamsesRun(ic, RunConfig(a_end=0.4, n_steps=8,
                                        output_aexp=(0.4,)))
        result1 = first.run(output_dir=str(tmp_path))
        resumed = resume_run(os.path.join(str(tmp_path), "output_00001"), 1,
                             RunConfig(a_end=1.0, n_steps=12,
                                       output_aexp=(1.0,))).run()
        assert resumed.final.rms_delta > result1.final.rms_delta
