"""Unit tests for the FFT Poisson solver."""

import numpy as np
import pytest

from repro.ramses import (
    acceleration_from_source,
    gradient_spectral,
    laplacian_eigenvalues,
    poisson_solve,
)
from repro.ramses.poisson import cic_window


def grid_coords(n):
    x = np.arange(n) / n
    return np.meshgrid(x, x, x, indexing="ij")


class TestPoissonSolve:
    def test_single_mode_analytic(self):
        """laplacian(phi) = sin(2 pi k x) -> phi = -sin/(2 pi k)^2."""
        n = 32
        X, _, _ = grid_coords(n)
        for k in (1, 2, 3):
            src = np.sin(2 * np.pi * k * X)
            phi = poisson_solve(src)
            expected = -src / (2 * np.pi * k) ** 2
            assert np.allclose(phi, expected, atol=1e-12)

    def test_mean_mode_removed(self):
        n = 16
        src = np.ones((n, n, n)) * 5.0   # pure mean: no solution; gauge -> 0
        phi = poisson_solve(src)
        assert np.allclose(phi, 0.0, atol=1e-12)

    def test_solution_zero_mean(self):
        rng = np.random.default_rng(0)
        src = rng.standard_normal((16, 16, 16))
        phi = poisson_solve(src)
        assert phi.mean() == pytest.approx(0.0, abs=1e-13)

    def test_laplacian_roundtrip(self):
        """Applying the spectral laplacian to phi recovers the source.

        The gradient zeroes Nyquist-frequency derivatives (sign-ambiguous),
        so the source must be Nyquist-free for the roundtrip to be exact."""
        rng = np.random.default_rng(1)
        n = 16
        raw = rng.standard_normal((n, n, n))
        raw_hat = np.fft.fftn(raw)
        raw_hat[n // 2, :, :] = 0
        raw_hat[:, n // 2, :] = 0
        raw_hat[:, :, n // 2] = 0
        raw_hat[0, 0, 0] = 0
        src = np.real(np.fft.ifftn(raw_hat))
        phi = poisson_solve(src)
        lap = np.zeros_like(phi)
        grad = gradient_spectral(phi)
        for axis in range(3):
            lap += gradient_spectral(grad[..., axis])[..., axis]
        assert np.allclose(lap, src, atol=1e-8)

    def test_discrete_kernel_matches_fd_laplacian(self):
        """With kernel='discrete', the 7-point FD laplacian of phi == src."""
        rng = np.random.default_rng(2)
        n = 16
        src = rng.standard_normal((n, n, n))
        src -= src.mean()
        phi = poisson_solve(src, kernel="discrete")
        h = 1.0 / n
        lap = (-6.0 * phi
               + np.roll(phi, 1, 0) + np.roll(phi, -1, 0)
               + np.roll(phi, 1, 1) + np.roll(phi, -1, 1)
               + np.roll(phi, 1, 2) + np.roll(phi, -1, 2)) / h ** 2
        assert np.allclose(lap, src, atol=1e-8)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            poisson_solve(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            poisson_solve(np.zeros((4, 4, 8)))
        with pytest.raises(ValueError):
            poisson_solve(np.zeros((8, 8, 8)), kernel="warp")

    def test_eigenvalues_negative_semidefinite(self):
        for kernel in ("spectral", "discrete"):
            eig = laplacian_eigenvalues(16, kernel)
            assert np.all(eig <= 0)
            assert eig[0, 0, 0] == 0.0


class TestGradient:
    def test_single_mode_gradient(self):
        n = 32
        X, _, _ = grid_coords(n)
        f = np.sin(2 * np.pi * X)
        g = gradient_spectral(f)
        assert np.allclose(g[..., 0], 2 * np.pi * np.cos(2 * np.pi * X),
                           atol=1e-10)
        assert np.allclose(g[..., 1], 0.0, atol=1e-10)
        assert np.allclose(g[..., 2], 0.0, atol=1e-10)

    def test_gradient_of_constant_is_zero(self):
        g = gradient_spectral(np.full((8, 8, 8), 3.0))
        assert np.allclose(g, 0.0, atol=1e-14)

    def test_result_is_real(self):
        rng = np.random.default_rng(3)
        g = gradient_spectral(rng.standard_normal((16, 16, 16)))
        assert g.dtype == np.float64


class TestAcceleration:
    def test_acc_is_minus_grad_phi(self):
        rng = np.random.default_rng(4)
        src = rng.standard_normal((16, 16, 16))
        phi, acc = acceleration_from_source(src)
        assert np.allclose(acc, -gradient_spectral(phi), atol=1e-12)

    def test_momentum_conservation(self):
        """Total force on the grid vanishes (no self-acceleration)."""
        rng = np.random.default_rng(5)
        src = rng.standard_normal((16, 16, 16))
        _, acc = acceleration_from_source(src)
        assert np.allclose(acc.sum(axis=(0, 1, 2)), 0.0, atol=1e-9)

    def test_deconvolution_boosts_small_scales(self):
        n = 16
        X, _, _ = grid_coords(n)
        src = np.sin(2 * np.pi * 6 * X)   # high-k mode
        _, plain = acceleration_from_source(src)
        _, boosted = acceleration_from_source(src, deconvolve_cic=True)
        assert np.abs(boosted).max() > np.abs(plain).max()


class TestCicWindow:
    def test_dc_mode_unity(self):
        w = cic_window(16)
        assert w[0, 0, 0] == pytest.approx(1.0)

    def test_window_in_unit_interval(self):
        w = cic_window(16)
        assert np.all(w > 0) and np.all(w <= 1.0)

    def test_nyquist_value(self):
        w = cic_window(16)
        # 1-d CIC at Nyquist: sinc(1/2)^2 = (2/pi)^2
        assert w[8, 0, 0] == pytest.approx((2 / np.pi) ** 2)
