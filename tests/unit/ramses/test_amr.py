"""Unit tests for the AMR refinement bookkeeping."""

import numpy as np
import pytest

from repro.ramses import ParticleSet, build_amr


def clustered_particles(n_uniform=512, n_cluster=512, seed=0):
    rng = np.random.default_rng(seed)
    uniform = rng.random((n_uniform, 3))
    cluster = np.mod(0.5 + 0.02 * rng.standard_normal((n_cluster, 3)), 1.0)
    x = np.vstack([uniform, cluster])
    mass = np.full(len(x), 1.0 / len(x))
    return x, mass


class TestBuild:
    def test_uniform_lattice_no_refinement(self):
        parts = ParticleSet.uniform_lattice(8)
        # 1 particle per level-3 cell, threshold 8 -> no refinement
        amr = build_amr(parts.x, parts.mass, levelmin=3, levelmax=6)
        assert amr.deepest_refined_level == 3
        assert amr.levels[0].n_cells == 8 ** 3
        assert amr.levels[0].n_leaves == 8 ** 3

    def test_cluster_triggers_refinement(self):
        x, mass = clustered_particles()
        amr = build_amr(x, mass, levelmin=3, levelmax=7)
        assert amr.deepest_refined_level > 3

    def test_strict_nesting(self):
        """Every active cell at level L+1 lies inside a refined L cell."""
        x, mass = clustered_particles()
        amr = build_amr(x, mass, levelmin=3, levelmax=6)
        for parent, child in zip(amr.levels[:-1], amr.levels[1:]):
            if child.occupied.size == 1:   # empty placeholder level
                continue
            up = np.repeat(np.repeat(np.repeat(
                parent.refined, 2, axis=0), 2, axis=1), 2, axis=2)
            assert not np.any(child.occupied & ~up)

    def test_leaves_partition_cells(self):
        x, mass = clustered_particles()
        amr = build_amr(x, mass, levelmin=3, levelmax=6)
        for lv in amr.levels:
            assert lv.n_leaves <= lv.n_cells

    def test_m_refine_controls_depth(self):
        x, mass = clustered_particles()
        deep = build_amr(x, mass, 3, 7, m_refine=4.0)
        shallow = build_amr(x, mass, 3, 7, m_refine=64.0)
        assert deep.total_cells >= shallow.total_cells

    def test_multi_mass_quantum(self):
        """Zoom particle sets refine against the smallest mass species."""
        rng = np.random.default_rng(1)
        coarse = rng.random((256, 3))
        fine = np.mod(0.5 + 0.01 * rng.standard_normal((256, 3)), 1.0)
        x = np.vstack([coarse, fine])
        mass = np.concatenate([np.full(256, 8.0 / 512), np.full(256, 1.0 / 512)])
        amr = build_amr(x, mass, 3, 8)
        assert amr.deepest_refined_level >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_amr(np.empty((0, 3)), np.empty(0), 3, 6)
        x, mass = clustered_particles(8, 8)
        with pytest.raises(ValueError):
            build_amr(x, mass, 5, 3)
        with pytest.raises(ValueError):
            build_amr(x, np.zeros_like(mass), 3, 5)


class TestWorkModel:
    def test_work_grows_with_refinement(self):
        x, mass = clustered_particles()
        deep = build_amr(x, mass, 3, 7, m_refine=4.0)
        shallow = build_amr(x, mass, 3, 7, m_refine=1e9)
        assert (deep.work_units(n_particles=len(x))
                > shallow.work_units(n_particles=len(x)))

    def test_subcycling_weight(self):
        """A level-L cell costs 2^(L - levelmin) sweeps."""
        x, mass = clustered_particles()
        amr = build_amr(x, mass, 3, 6)
        manual = sum(lv.n_cells * 2.0 ** (lv.level - 3) for lv in amr.levels)
        assert amr.work_units(cell_cost=1.0, particle_cost=0.0) == manual

    def test_cells_per_level_mapping(self):
        x, mass = clustered_particles()
        amr = build_amr(x, mass, 3, 5)
        cpl = amr.cells_per_level()
        assert set(cpl) == {3, 4, 5}
        assert cpl[3] == amr.levels[0].n_cells
