"""Unit + physics tests for the finite-volume Euler solver."""

import numpy as np
import pytest

from repro.ramses.hydro import HydroSolver, HydroState, hllc_flux
from repro.ramses.riemann import (
    PrimitiveState,
    exact_riemann,
    sample_riemann,
    sod_states,
)


class TestExactRiemann:
    def test_sod_star_region_toro_reference(self):
        """Toro table 4.2 test 1: p* = 0.30313, u* = 0.92745."""
        left, right = sod_states()
        p, u = exact_riemann(left, right)
        assert p == pytest.approx(0.30313, abs=1e-5)
        assert u == pytest.approx(0.92745, abs=1e-5)

    def test_symmetric_collision(self):
        """Two equal streams colliding: u* = 0 by symmetry."""
        left = PrimitiveState(1.0, 1.0, 1.0)
        right = PrimitiveState(1.0, -1.0, 1.0)
        p, u = exact_riemann(left, right)
        assert u == pytest.approx(0.0, abs=1e-12)
        assert p > 1.0   # compression

    def test_trivial_riemann_problem(self):
        state = PrimitiveState(1.0, 0.5, 1.0)
        p, u = exact_riemann(state, state)
        assert p == pytest.approx(1.0, rel=1e-9)
        assert u == pytest.approx(0.5, rel=1e-9)

    def test_vacuum_detected(self):
        left = PrimitiveState(1.0, -10.0, 0.1)
        right = PrimitiveState(1.0, 10.0, 0.1)
        with pytest.raises(ValueError, match="vacuum"):
            exact_riemann(left, right)

    def test_sampling_constant_outside_fan(self):
        left, right = sod_states()
        sol = sample_riemann(left, right, [-10.0, 10.0])
        assert sol[0] == pytest.approx([1.0, 0.0, 1.0])
        assert sol[1] == pytest.approx([0.125, 0.0, 0.1])

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            PrimitiveState(-1.0, 0.0, 1.0)


class TestHydroState:
    def test_primitive_roundtrip(self):
        rng = np.random.default_rng(0)
        rho = 1.0 + rng.random((4, 4, 4))
        vel = rng.standard_normal((4, 4, 4, 3))
        p = 0.5 + rng.random((4, 4, 4))
        state = HydroState.from_primitive(rho, vel, p)
        assert np.allclose(state.velocity(), vel)
        assert np.allclose(state.pressure(), p)

    def test_sound_speed_uniform(self):
        state = HydroState.uniform((4, 4, 4), rho=1.0, pressure=1.0)
        assert np.allclose(state.sound_speed(), np.sqrt(1.4))

    def test_validation(self):
        with pytest.raises(ValueError):
            HydroState(np.ones((4, 4, 4)), np.zeros((4, 4, 4, 2)),
                       np.ones((4, 4, 4)))
        with pytest.raises(ValueError):
            HydroState.uniform((2, 2, 2), gamma=1.0)


class TestConservation:
    def make_noisy(self, n=12, seed=0):
        state = HydroState.uniform((n, n, n))
        rng = np.random.default_rng(seed)
        state.rho = state.rho + 0.2 * rng.random((n, n, n))
        state.energy = state.energy + 0.2 * rng.random((n, n, n))
        state.mom = state.mom + 0.05 * rng.standard_normal((n, n, n, 3))
        return state

    def test_exact_conservation(self):
        state = self.make_noisy()
        m0, p0, e0 = state.totals()
        HydroSolver().run(state, 0.2)
        m1, p1, e1 = state.totals()
        assert m1 == pytest.approx(m0, abs=1e-11)
        assert e1 == pytest.approx(e0, abs=1e-10)
        assert np.allclose(p1, p0, atol=1e-11)

    def test_uniform_state_is_steady(self):
        state = HydroState.uniform((8, 8, 8), rho=2.0, pressure=3.0)
        HydroSolver().run(state, 0.5)
        assert np.allclose(state.rho, 2.0, atol=1e-12)
        assert np.allclose(state.pressure(), 3.0, atol=1e-11)
        assert np.allclose(state.mom, 0.0, atol=1e-12)

    def test_galilean_advection(self):
        """A uniform flow stays uniform (no spurious forces)."""
        n = 8
        state = HydroState.from_primitive(
            np.ones((n, n, n)),
            np.broadcast_to([0.3, 0.0, 0.0], (n, n, n, 3)).copy(),
            np.ones((n, n, n)))
        HydroSolver().run(state, 0.3)
        assert np.allclose(state.velocity()[..., 0], 0.3, atol=1e-12)

    def test_positivity_preserved(self):
        state = self.make_noisy()
        HydroSolver().run(state, 0.5)
        assert np.all(state.rho > 0)
        assert np.all(state.pressure() > 0)


@pytest.mark.parametrize("axis", [0, 1, 2])
class TestSodTube:
    def run_sod(self, axis, n=200, t_end=0.1):
        shape = [4, 4, 4]
        shape[axis] = n
        idx = np.arange(n)
        profile = np.where(idx < n // 2, 1.0, 0.125)
        p_profile = np.where(idx < n // 2, 1.0, 0.1)
        expand = [1, 1, 1]
        expand[axis] = n
        rho = profile.reshape(expand) * np.ones(shape)
        p = p_profile.reshape(expand) * np.ones(shape)
        state = HydroState.from_primitive(rho, np.zeros(tuple(shape) + (3,)), p)
        HydroSolver(cfl=0.4).run(state, t_end, dx=1.0 / n)
        x = (idx + 0.5) / n
        left, right = sod_states()
        exact = sample_riemann(left, right, (x - 0.5) / t_end)
        take = [0, 0, 0]
        take[axis] = slice(None)
        rho_num = state.rho[tuple(take)]
        u_num = state.velocity()[tuple(take) + (axis,)]
        p_num = state.pressure()[tuple(take)]
        # central region untouched by the periodic-wrap waves
        mask = (x > 0.28) & (x < 0.72)
        return (rho_num[mask], u_num[mask], p_num[mask],
                exact[mask, 0], exact[mask, 1], exact[mask, 2])

    def test_sod_matches_exact(self, axis):
        rho, u, p, rho_x, u_x, p_x = self.run_sod(axis)
        assert np.abs(rho - rho_x).mean() < 0.03
        assert np.abs(u - u_x).mean() < 0.05
        assert np.abs(p - p_x).mean() < 0.03

    def test_shock_position(self, axis):
        """The shock sits at x = 0.5 + S*t with S ~ 1.7522 (Toro)."""
        rho, _, _, rho_x, _, _ = self.run_sod(axis)
        # compare numerically: shock cell where density jumps past 0.2
        num_jump = np.flatnonzero(rho < 0.2)
        exact_jump = np.flatnonzero(rho_x < 0.2)
        assert len(num_jump) and len(exact_jump)
        assert abs(num_jump[0] - exact_jump[0]) <= 3


class TestSelfGravity:
    def test_overdensity_infall(self):
        """With self-gravity on, gas flows towards an overdense blob."""
        n = 16
        x = (np.arange(n) + 0.5) / n
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        r2 = (X - 0.5) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2
        rho = 1.0 + 0.5 * np.exp(-r2 / 0.02)
        state = HydroState.from_primitive(rho, np.zeros((n, n, n, 3)),
                                          np.full((n, n, n), 0.01))
        solver = HydroSolver(self_gravity_constant=10.0)
        solver.run(state, 0.05)
        # radial momentum points inward around the blob
        vel = state.velocity()
        left_of_center = vel[n // 4, n // 2, n // 2, 0]
        right_of_center = vel[3 * n // 4, n // 2, n // 2, 0]
        assert left_of_center > 0 > right_of_center

    def test_gravity_off_no_motion(self):
        n = 8
        rho = np.ones((n, n, n))
        rho[4, 4, 4] = 1.5
        state = HydroState.from_primitive(
            rho, np.zeros((n, n, n, 3)), np.ones((n, n, n)))
        # pressure balances nothing here, but without gravity the evolution
        # is driven only by the pressure/density jump: compare against the
        # gravity-on run to see the extra infall
        plain = state.copy()
        HydroSolver().run(plain, 0.02)
        grav = state.copy()
        HydroSolver(self_gravity_constant=50.0).run(grav, 0.02)
        assert not np.allclose(plain.mom, grav.mom)
