"""Unit tests for the simulated-MPI parallel step model."""

import numpy as np
import pytest

from repro.ramses.parallel import (
    MpiCostModel,
    ParallelStepModel,
    scaling_curve,
)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(0)
    uniform = rng.random((6000, 3))
    clump = np.mod(0.5 + 0.05 * rng.standard_normal((2000, 3)), 1.0)
    return np.vstack([uniform, clump])


@pytest.fixture(scope="module")
def model(cloud):
    return ParallelStepModel(cloud, n_grid=32)


class TestBreakdown:
    def test_single_rank_no_comm(self, model):
        bd = model.breakdown(1)
        assert bd.ghost == 0.0 and bd.fft == 0.0
        assert bd.compute > 0 and bd.imbalance == 1.0

    def test_compute_shrinks_with_ranks(self, model):
        assert model.breakdown(8).compute < model.breakdown(2).compute

    def test_comm_terms_positive_multirank(self, model):
        bd = model.breakdown(8)
        assert bd.ghost > 0 and bd.fft > 0
        assert 0 < bd.comm_fraction < 1

    def test_imbalance_grows_with_ranks(self, model):
        assert model.breakdown(64).imbalance >= model.breakdown(4).imbalance

    def test_total_is_sum(self, model):
        bd = model.breakdown(4)
        assert bd.total == pytest.approx(bd.compute + bd.ghost + bd.fft)

    def test_validation(self, cloud):
        with pytest.raises(ValueError):
            ParallelStepModel(cloud, n_grid=1)
        with pytest.raises(ValueError):
            ParallelStepModel(cloud, n_grid=16, node_speed_ghz=0)
        with pytest.raises(ValueError):
            ParallelStepModel(np.zeros((4, 2)), n_grid=16)
        model = ParallelStepModel(cloud, n_grid=16)
        with pytest.raises(ValueError):
            model.breakdown(0)


class TestScalingShape:
    def test_speedup_monotone_small_p(self, model):
        assert model.speedup(4) > model.speedup(2) > 1.0

    def test_efficiency_decreasing(self, model):
        effs = [model.efficiency(p) for p in (2, 8, 32)]
        assert effs[0] > effs[1] > effs[2]

    def test_faster_network_helps(self, cloud):
        slow = ParallelStepModel(cloud, 32,
                                 cost=MpiCostModel(bandwidth=1e7))
        fast = ParallelStepModel(cloud, 32,
                                 cost=MpiCostModel(bandwidth=1e9))
        assert fast.efficiency(16) > slow.efficiency(16)

    def test_faster_nodes_hurt_efficiency(self, cloud):
        """Quicker compute makes the same network relatively costlier."""
        slow_nodes = ParallelStepModel(cloud, 32, node_speed_ghz=1.0)
        fast_nodes = ParallelStepModel(cloud, 32, node_speed_ghz=8.0)
        assert slow_nodes.efficiency(16) > fast_nodes.efficiency(16)

    def test_sweet_spot_bounds(self, model):
        spot = model.sweet_spot([1, 2, 4, 8, 16, 32, 64])
        assert spot in (1, 2, 4, 8, 16, 32, 64)
        # with an infinitely fast network everything is efficient
        ideal = ParallelStepModel(model.x, 32, cost=MpiCostModel(
            latency=0.0, bandwidth=1e18))
        assert ideal.sweet_spot([1, 2, 4, 8, 16], min_efficiency=0.9) >= 8

    def test_scaling_curve_helper(self, cloud):
        curve = scaling_curve(cloud, 32, [1, 4, 16])
        assert [bd.ncpu for bd in curve] == [1, 4, 16]
