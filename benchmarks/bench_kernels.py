"""Micro-benchmarks of the numerical kernels (throughput tracking).

Not paper figures — these guard the vectorized hot paths (CIC, FFT Poisson,
Hilbert keys, FoF) against performance regressions, per the hpc-parallel
guide's "no optimization without measuring".
"""

import numpy as np
import pytest

from repro.galics import friends_of_friends
from repro.ramses import (
    EDS,
    GravitySolver,
    cic_deposit,
    hilbert_encode,
    poisson_solve,
)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(0)
    x = rng.random((64 ** 3 // 4, 3))   # 65k particles
    mass = np.full(len(x), 1.0 / len(x))
    return x, mass


def test_bench_cic_deposit(benchmark, cloud):
    x, mass = cloud
    grid = benchmark(cic_deposit, x, mass, 64)
    assert grid.sum() == pytest.approx(1.0)


def test_bench_poisson_solve(benchmark):
    rng = np.random.default_rng(1)
    src = rng.standard_normal((64, 64, 64))
    phi = benchmark(poisson_solve, src)
    assert np.all(np.isfinite(phi))


def test_bench_full_force_evaluation(benchmark, cloud):
    x, mass = cloud
    solver = GravitySolver(EDS, 64)
    result = benchmark(solver.accelerations, x, mass, 0.5)
    assert result.acc.shape == (len(x), 3)


def test_bench_hilbert_encode(benchmark):
    rng = np.random.default_rng(2)
    n = 1 << 10
    ix = rng.integers(0, n, 100_000)
    iy = rng.integers(0, n, 100_000)
    iz = rng.integers(0, n, 100_000)
    keys = benchmark(hilbert_encode, ix, iy, iz, 10)
    assert len(np.unique(keys)) > 90_000


def test_bench_fof(benchmark):
    rng = np.random.default_rng(3)
    x = rng.random((20_000, 3))
    labels = benchmark(friends_of_friends, x, 0.01)
    assert len(labels) == 20_000
