"""Micro-benchmarks of the numerical kernels (throughput tracking).

Not paper figures — these guard the REAL-mode hot paths (CIC scatter and
gather, FFT Poisson, the full PM force evaluation, Hilbert keys, FoF)
against performance regressions, per the hpc-parallel guide's "no
optimization without measuring".

Each compiled-kernel shape also times the pure-numpy mirror in-process
(with ``phys_c`` temporarily nulled) and records the ratio in
``extra_info`` (``speedup_vs_pure_py``), so the exported
``BENCH_kernels.json`` documents what the C kernels buy on this box.
When the compiled kernels are loaded the CIC gather and FoF shapes
assert the >= 3x floor; the CIC scatter is recorded without a floor —
its accumulation order is pinned bit-identical to the numpy mirror
(corner-major, eight ordered passes), which caps how far it can beat a
mirror paying the same memory-ordered scatter.

``REPRO_BENCH_QUICK=1`` shrinks the shapes so CI can run the module in
seconds; the committed ``BENCH_kernels.json`` baseline is a quick-mode
recording (see ``benchmarks/export.py``) so the regression gate compares
like with like.
"""

import os
import time

import numpy as np
import pytest

import repro.galics.halomaker as halomaker
import repro.ramses.mesh as mesh
from repro.galics import friends_of_friends
from repro.ramses import (
    EDS,
    GravitySolver,
    cic_deposit,
    cic_interpolate,
    hilbert_encode,
    poisson_solve,
)
from repro.ramses.physcore import PHYS_IMPL

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_GRID = 32 if QUICK else 64
N_PART = (64 ** 3 // 16) if QUICK else (64 ** 3 // 4)   # 16k / 65k particles
N_FOF = 5_000 if QUICK else 20_000
N_HILBERT = 20_000 if QUICK else 100_000

#: Floor asserted on the gather and FoF shapes when the C kernels loaded.
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(0)
    x = rng.random((N_PART, 3))
    mass = np.full(len(x), 1.0 / len(x))
    return x, mass


def _pure_py_min(fn, repeats=3):
    """Best-of wall time of ``fn`` with every compiled kernel disabled."""
    saved = (mesh.phys_c, halomaker.phys_c)
    mesh.phys_c = halomaker.phys_c = None
    try:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        mesh.phys_c, halomaker.phys_c = saved
    return best


def _record_speedup(benchmark, pure_fn, assert_floor=False):
    pure_min = _pure_py_min(pure_fn)
    speedup = pure_min / benchmark.stats.stats.min
    benchmark.extra_info["phys_impl"] = PHYS_IMPL
    benchmark.extra_info["pure_py_min"] = pure_min
    benchmark.extra_info["speedup_vs_pure_py"] = round(speedup, 3)
    if assert_floor and PHYS_IMPL == "c":
        assert speedup >= SPEEDUP_FLOOR, (
            f"compiled kernel only {speedup:.2f}x over the numpy mirror "
            f"(floor {SPEEDUP_FLOOR}x)")


def test_bench_cic_deposit(benchmark, cloud):
    x, mass = cloud
    grid = benchmark(cic_deposit, x, mass, N_GRID)
    assert grid.sum() == pytest.approx(1.0)
    _record_speedup(benchmark, lambda: cic_deposit(x, mass, N_GRID))


def test_bench_cic_gather(benchmark, cloud):
    x, _ = cloud
    rng = np.random.default_rng(4)
    field = rng.standard_normal((N_GRID, N_GRID, N_GRID, 3))
    out = benchmark(cic_interpolate, field, x)
    assert out.shape == (len(x), 3)
    _record_speedup(benchmark, lambda: cic_interpolate(field, x),
                    assert_floor=True)


def test_bench_poisson_solve(benchmark):
    rng = np.random.default_rng(1)
    src = rng.standard_normal((N_GRID, N_GRID, N_GRID))
    phi = benchmark(poisson_solve, src)
    assert np.all(np.isfinite(phi))


def test_bench_full_force_evaluation(benchmark, cloud):
    x, mass = cloud
    solver = GravitySolver(EDS, N_GRID)
    result = benchmark(solver.accelerations, x, mass, 0.5)
    assert result.acc.shape == (len(x), 3)
    _record_speedup(benchmark, lambda: solver.accelerations(x, mass, 0.5))


def test_bench_hilbert_encode(benchmark):
    rng = np.random.default_rng(2)
    n = 1 << 10
    ix = rng.integers(0, n, N_HILBERT)
    iy = rng.integers(0, n, N_HILBERT)
    iz = rng.integers(0, n, N_HILBERT)
    keys = benchmark(hilbert_encode, ix, iy, iz, 10)
    assert len(np.unique(keys)) > 0.9 * N_HILBERT


def test_bench_fof(benchmark):
    rng = np.random.default_rng(3)
    x = rng.random((N_FOF, 3))
    labels = benchmark(friends_of_friends, x, 0.01)
    assert len(labels) == N_FOF
    _record_speedup(benchmark, lambda: friends_of_friends(x, 0.01),
                    assert_floor=True)
