"""Parallel experiment runner: efficiency + determinism benchmarks.

Two claims are measured over the E10 scaling sweep (the runner's flagship
consumer — per-rank-count breakdowns of a staged ~50 MB snapshot):

* **byte-identical results** — a 4-worker sweep returns exactly the bytes
  of the serial sweep (canonical-pickle comparison), always asserted;
* **>= 0.7 parallel efficiency at 4 workers** over the mapped portion of
  the sweep (the part the runner owns; the snapshot build preceding it is
  inherently serial).  Asserted only when the machine actually has >= 4
  usable cores — on smaller boxes the pool is oversubscribed and the
  measurement records overhead, not speedup.

``REPRO_BENCH_QUICK=1`` shrinks the particle count so CI can smoke-test
the module in seconds.
"""

import os
import time

from repro.experiments import scaling_nodes
from repro.experiments.runner import Task, canonical_pickle, run_tasks

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPLICATE = 4 if QUICK else 64
RANKS = (1, 2, 4, 8) if QUICK else (2, 4, 8, 16, 24, 32, 48, 64, 96, 128)
JOBS = 4
ROUNDS = 1 if QUICK else 2


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _stage(replicate):
    """Build the scaling model once and stage it for pool workers, exactly
    as ``scaling_nodes.run`` does; returns the task list."""
    import numpy as np

    from repro.grafic.ic import make_single_level_ic
    from repro.ramses.cosmology import LCDM_WMAP
    from repro.ramses.parallel import ParallelStepModel
    from repro.ramses.simulation import RamsesRun, RunConfig

    seed = 42
    ic = make_single_level_ic(32, 100.0, LCDM_WMAP, a_start=0.05, seed=seed)
    snap = RamsesRun(ic, RunConfig(a_end=0.8, n_steps=16,
                                   output_aexp=(0.8,))).run().final
    rng = np.random.default_rng(seed)
    x = np.mod(np.repeat(snap.particles.x, replicate, axis=0)
               + 0.004 * rng.standard_normal(
                   (len(snap.particles) * replicate, 3)), 1.0)
    model = ParallelStepModel(x, int(round(len(x) ** (1 / 3))),
                              node_speed_ghz=2.0)
    scaling_nodes._POOL_MODEL = model
    return [Task(key=f"ranks={p}", func=scaling_nodes._breakdown_task,
                 args=(p,), seed=seed) for p in RANKS]


def test_bench_runner_efficiency(benchmark, show_report):
    """Map the sweep at 4 workers; compare against the serial map."""
    tasks = _stage(REPLICATE)
    try:
        t0 = time.perf_counter()
        serial = run_tasks(tasks, jobs=1)
        serial_time = time.perf_counter() - t0

        parallel_holder = []

        def _parallel():
            parallel_holder[:] = run_tasks(tasks, jobs=JOBS)

        benchmark.pedantic(_parallel, rounds=ROUNDS, iterations=1)
    finally:
        scaling_nodes._POOL_MODEL = None

    assert canonical_pickle(serial) == canonical_pickle(parallel_holder)

    parallel_time = benchmark.stats.stats.min
    speedup = serial_time / parallel_time
    efficiency = speedup / JOBS
    benchmark.extra_info["serial_seconds"] = serial_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["efficiency"] = efficiency
    benchmark.extra_info["usable_cores"] = _usable_cores()
    show_report(
        f"runner sweep x{len(RANKS)}: serial {serial_time:.2f}s, "
        f"{JOBS} workers {parallel_time:.2f}s -> speedup {speedup:.2f}x, "
        f"efficiency {efficiency:.2f} ({_usable_cores()} usable cores)")
    if _usable_cores() >= JOBS:
        assert efficiency >= 0.7, (
            f"runner efficiency {efficiency:.2f} below 0.7 at {JOBS} workers")


def test_bench_runner_experiment_end_to_end(benchmark, show_report):
    """The whole E10 experiment through ``run(jobs=4)`` — includes the
    serial snapshot build, so this reports wall-clock, not efficiency."""
    holder = []

    def _run():
        holder[:] = [scaling_nodes.run(rank_counts=RANKS,
                                       replicate=REPLICATE, jobs=JOBS)]

    benchmark.pedantic(_run, rounds=ROUNDS, iterations=1)
    result = holder[0]
    benchmark.extra_info["n_particles"] = result.n_particles
    show_report(f"scaling_nodes.run(jobs={JOBS}): {result.n_particles} "
                f"particles, {len(RANKS)} rank counts, "
                f"{benchmark.stats.stats.min:.2f}s")
