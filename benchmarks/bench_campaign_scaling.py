"""Campaign-scaling bench: makespan vs number of zoom requests.

§5.1: "As each server cannot compute more than one simulation at the same
time, we won't be able to have more than 11 parallel computations at the
same time."  The consequence is wave scheduling: the part-2 makespan grows
in steps of ceil(n / 11) waves of mean zoom duration.  This bench sweeps n
and checks that staircase (plus the linearity of the sequential estimate).
"""

import math

import pytest

from repro.services import CampaignConfig, run_campaign


def measure(n_sub):
    result = run_campaign(CampaignConfig(n_sub_simulations=n_sub))
    ends = [t.completed_at for t in result.part2_traces]
    starts = [t.submitted_at for t in result.part2_traces]
    return {
        "n": n_sub,
        "part2_makespan_h": (max(ends) - min(starts)) / 3600.0,
        "mean_zoom_h": result.part2_mean_duration / 3600.0,
        "sequential_h": result.sequential_estimate / 3600.0,
    }


def test_bench_campaign_scaling(benchmark, show_report):
    rows = benchmark.pedantic(
        lambda: [measure(n) for n in (11, 22, 55, 100)],
        rounds=1, iterations=1)

    lines = ["campaign scaling (11 SeDs; waves of ceil(n/11)):",
             f"{'n':>5} {'waves':>6} {'part-2 makespan':>16} "
             f"{'sequential':>11} {'speedup':>8}"]
    for row in rows:
        waves = math.ceil(row["n"] / 11)
        speedup = row["sequential_h"] / row["part2_makespan_h"]
        lines.append(f"{row['n']:>5} {waves:>6} "
                     f"{row['part2_makespan_h']:>15.2f}h "
                     f"{row['sequential_h']:>10.1f}h {speedup:>7.2f}x")
    show_report("\n".join(lines))

    # staircase: makespan ~ waves x mean zoom duration (within wave scatter)
    for row in rows:
        waves = math.ceil(row["n"] / 11)
        assert row["part2_makespan_h"] == pytest.approx(
            waves * row["mean_zoom_h"], rel=0.35)
    # one full wave (n=11) runs everything in parallel
    assert rows[0]["part2_makespan_h"] < 2.2 * rows[0]["mean_zoom_h"]
    # sequential estimate is linear in n
    assert rows[3]["sequential_h"] > 8.0 * rows[0]["sequential_h"]