"""E8 benchmark: Figure 2 analogue — density field through cosmic time.

A real PM run; the assertion is the figure's content: fluctuations grow
left-to-right and high-density peaks (halos) exist in the final panel.
"""

from repro.experiments import figure2_density


def test_bench_figure2_density(benchmark, show_report):
    result = benchmark.pedantic(figure2_density.run, rounds=1, iterations=1)
    show_report(figure2_density.render(result))

    assert result.monotone_growth
    assert result.max_delta[-1] > 50.0      # collapsed structures by a=1
    assert result.n_halos_final >= 5
