"""Kernel micro-benchmarks: raw event throughput of the simulation engine.

Every paper experiment is ultimately a loop over ``Engine.step()``, so
events/sec here bounds how large the campaigns can grow.  Three shapes:

* **ping-pong** — one process chaining timeouts, the RPC wait shape that
  dominates the middleware (create + schedule + dispatch + resume per
  event);
* **timeout churn** — a pre-filled heap of watcherless timeouts, isolating
  heap discipline + dispatch from the process machinery;
* **AnyOf fan-in** — the reply-vs-deadline race shape: a process
  repeatedly waits on ``any_of`` over a fan of timeouts (condition
  settling + callback detach).

``REPRO_BENCH_QUICK=1`` shrinks the workloads so CI can smoke-test the
module in seconds; the committed ``BENCH_engine.json`` baseline is a
quick-mode recording (see ``benchmarks/export.py``) so the CI regression
gate compares like with like.
"""

import os

from repro.sim import Engine

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_PINGPONG = 20_000 if QUICK else 200_000
N_CHURN = 20_000 if QUICK else 200_000
ANYOF_FAN = 32
N_ANYOF = 200 if QUICK else 2_000
ROUNDS = 3 if QUICK else 5


def _events_dispatched(engine: Engine) -> int:
    """Events scheduled so far (the kernel stamps one seq per push)."""
    return engine.events_scheduled


def _run_pingpong() -> int:
    engine = Engine()

    def chain():
        for _ in range(N_PINGPONG):
            yield engine.timeout(0.001)

    engine.run_process(chain())
    return _events_dispatched(engine)


def _run_churn() -> int:
    engine = Engine()
    for i in range(N_CHURN):
        # Deterministic scatter of delays so the heap actually reorders.
        engine.timeout((i * 7919) % 1000 * 1e-3)
    engine.run()
    return _events_dispatched(engine)


def _run_anyof() -> int:
    engine = Engine()

    def racer():
        for i in range(N_ANYOF):
            fan = [engine.timeout((1 + (i + j) % ANYOF_FAN) * 1e-3)
                   for j in range(ANYOF_FAN)]
            yield engine.any_of(fan)

    engine.run_process(racer())
    return _events_dispatched(engine)


def _report(benchmark, show_report, label: str, n_events: int) -> None:
    rate = n_events / benchmark.stats.stats.mean
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["events_per_sec"] = rate
    show_report(f"{label}: {n_events} events, "
                f"{rate / 1e3:.0f}k events/sec (mean of "
                f"{benchmark.stats.stats.rounds} rounds)")


def test_bench_events_per_sec(benchmark, show_report):
    """Ping-pong: the per-event cost of the full schedule/dispatch/resume."""
    n_events = benchmark.pedantic(_run_pingpong, rounds=ROUNDS, iterations=1)
    _report(benchmark, show_report, "ping-pong", n_events)


def test_bench_timeout_churn(benchmark, show_report):
    """Heap discipline: dispatch a pre-filled heap of watcherless timeouts."""
    n_events = benchmark.pedantic(_run_churn, rounds=ROUNDS, iterations=1)
    _report(benchmark, show_report, "timeout churn", n_events)


def test_bench_anyof_fanin(benchmark, show_report):
    """Condition settling: any_of over a fan of timeouts, repeatedly."""
    n_events = benchmark.pedantic(_run_anyof, rounds=ROUNDS, iterations=1)
    _report(benchmark, show_report, f"any_of fan-in x{ANYOF_FAN}", n_events)
