"""Routing throughput: pull fan-out vs push materialized tables.

The pull protocol pays O(SeDs) estimate messages per submit, so the
simulator's wall-clock cost of routing a request grows with hierarchy
width; push mode answers from the MA's materialized table, so its cost is
flat.  This benchmark routes a fixed batch of submits (no solves) through
both modes at fixed topology shapes and records requests/sec — the
committed ``BENCH_scheduler.json`` baseline gates regressions and the
speedup test enforces the refactor's headline: push routes at least
``MIN_SPEEDUP``x faster than pull at the widest shape.
"""

import os
import time

import pytest

from repro.core import (
    BaseType,
    LocalAgent,
    MasterAgent,
    ProfileDesc,
    SeD,
    SubmitRequest,
    Tracer,
    TransportFabric,
    scalar_desc,
)
from repro.core.requests import new_request_id
from repro.sim import Engine, Host, Link, Network

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: (n_LAs, SeDs per LA) shapes; the last one is the speedup gate's shape.
SHAPES = ((2, 8), (4, 16)) if QUICK else ((4, 16), (10, 100))
N_SUBMITS = 12 if QUICK else 30
#: Push must route at least this many times faster than pull at the widest
#: shape (the full 1000-SeD shape targets the issue's 10x; quick mode's 64
#: SeDs keep a conservative 3x so CI smoke runs stay meaningful).
MIN_SPEEDUP = 3.0 if QUICK else 10.0

#: (shape, mode) -> measured requests/sec, shared across the parametrized
#: tests so the speedup assertion reuses the gated measurements.
_RATES = {}


def _probe_desc():
    desc = ProfileDesc("probe", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))
    return desc


def _solve(profile, ctx):
    yield from ctx.execute(0.01)
    profile.parameter(1).set(0)
    return 0


def _build(n_las, n_seds_per_la, routing):
    """A star hierarchy built directly on the engine (no Grid'5000 platform
    in the way — this measures routing, not platform construction)."""
    engine = Engine()
    net = Network(engine)
    hub = net.add_host(Host(engine, "hub"))
    fabric = TransportFabric(engine, net)
    tracer = Tracer()
    ma = MasterAgent(fabric, hub, name="MA", tracer=tracer, routing=routing)
    for la_i in range(n_las):
        la_host = net.add_host(Host(engine, f"la{la_i}"))
        net.connect("hub", la_host.name,
                    Link(engine, f"wl{la_i}", 0.002, 1e9))
        la = LocalAgent(fabric, la_host, name=f"LA{la_i}", parent="MA",
                        routing=routing)
        ma.add_child(la.name)
        la.launch()
        for sed_i in range(n_seds_per_la):
            sed_host = net.add_host(Host(engine, f"s{la_i}-{sed_i}"))
            net.connect(la_host.name, sed_host.name,
                        Link(engine, f"sl{la_i}-{sed_i}", 0.0001, 1e9))
            sed = SeD(fabric, sed_host, f"SeD{la_i}-{sed_i}", ma_name="MA",
                      tracer=tracer, parent=la.name, routing=routing)
            sed.add_service(_probe_desc(), _solve)
            sed.launch()
            la.add_child(sed.name)
    ma.launch()
    cli = fabric.endpoint("cli", "hub")
    cli.start()
    # Drain launch-time events (push mode: the initial estimate deltas
    # propagate and the MA table materializes before the clock starts).
    engine.run()
    return engine, cli


def _route(built, n_submits):
    engine, cli = built
    desc = _probe_desc()

    def driver():
        for _ in range(n_submits):
            sub = SubmitRequest(new_request_id(), desc, "hub", "cli")
            yield from cli.rpc("MA", "submit", sub)

    engine.run_process(driver())


def _measure_once(shape, mode):
    built = _build(shape[0], shape[1], mode)
    t0 = time.perf_counter()
    _route(built, N_SUBMITS)
    return N_SUBMITS / (time.perf_counter() - t0)


def _rate_of(shape, mode):
    if (shape, mode) not in _RATES:
        _RATES[(shape, mode)] = _measure_once(shape, mode)
    return _RATES[(shape, mode)]


def _shape_id(shape):
    return f"{shape[0]}x{shape[1]}"


def _bench_route(benchmark, show_report, shape, mode):
    state = {}

    def setup():
        state["built"] = _build(shape[0], shape[1], mode)
        return (), {}

    benchmark.pedantic(lambda: _route(state["built"], N_SUBMITS),
                       setup=setup, rounds=1, iterations=1)
    rate = N_SUBMITS / benchmark.stats.stats.min
    _RATES[(shape, mode)] = rate
    n_seds = shape[0] * shape[1]
    benchmark.extra_info["n_seds"] = n_seds
    benchmark.extra_info["requests_per_sec"] = rate
    show_report(f"{mode} routing @ {n_seds} SeDs: "
                f"{rate:.0f} requests/sec wall "
                f"({N_SUBMITS} submits, no solves)")


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
def test_bench_route_pull(benchmark, show_report, shape):
    _bench_route(benchmark, show_report, shape, "pull")


@pytest.mark.parametrize("shape", SHAPES, ids=_shape_id)
def test_bench_route_push(benchmark, show_report, shape):
    _bench_route(benchmark, show_report, shape, "push")


def test_bench_routing_speedup(benchmark, show_report):
    """The refactor's headline: push beats pull by MIN_SPEEDUP at the
    widest shape (reuses the routing measurements when they already ran)."""
    widest = SHAPES[-1]
    push = benchmark.pedantic(lambda: _measure_once(widest, "push"),
                              rounds=1, iterations=1)
    _RATES[(widest, "push")] = push
    pull = _rate_of(widest, "pull")
    speedup = push / pull
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["n_seds"] = widest[0] * widest[1]
    show_report(f"push/pull routing speedup @ {widest[0] * widest[1]} SeDs: "
                f"{speedup:.1f}x (gate: >= {MIN_SPEEDUP}x)")
    assert speedup >= MIN_SPEEDUP
