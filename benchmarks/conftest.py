"""Shared benchmark configuration.

Every figure/table benchmark runs its experiment through pytest-benchmark
(so `pytest benchmarks/ --benchmark-only` regenerates the paper's results
with timing) and prints the experiment's report — the same rows/series the
paper presents — to the terminal report section.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "report: experiment benchmark with a printed report")


@pytest.fixture
def show_report(request, capsys):
    """Collect a rendered experiment report and emit it after the test."""
    reports = []

    def _add(text: str) -> None:
        reports.append(text)

    yield _add
    if reports:
        with capsys.disabled():
            print()
            print("=" * 78)
            print(f"[{request.node.name}]")
            for text in reports:
                print(text)
            print("=" * 78)
