"""E10 benchmark: the nodes-per-SeD scaling ablation (§4.1's granularity)."""

from repro.experiments import scaling_nodes


def test_bench_scaling_nodes(benchmark, show_report):
    result = benchmark.pedantic(scaling_nodes.run, rounds=1, iterations=1)
    show_report(scaling_nodes.render(result))

    # near-linear at small rank counts
    assert result.efficiency(2) > 0.85
    # the paper's 16-machines choice sits on the efficient plateau
    assert result.efficiency(16) > 0.6
    # communication eventually kills scaling
    assert result.efficiency(128) < result.efficiency(16)
    assert 16 <= result.knee() <= 64
