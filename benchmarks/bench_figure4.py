"""E2/E3 benchmark: regenerate Figure 4 (Gantt + per-SeD execution time)."""

from repro.experiments import figure4


def test_bench_figure4(benchmark, show_report):
    result = benchmark(figure4.run)
    show_report(figure4.render(result))

    # E2: the 9/9/.../10 request distribution
    assert result.distribution == [9] * 10 + [10]
    # E3: busy-time shape — Toulouse ~15h, Nancy ~10.5h
    busy = result.busy_hours_by_cluster
    assert abs(min(busy["nancy-grillon"]) - 10.5) < 1.0
    assert abs(max(busy["toulouse-violette"]) - 15.0) < 1.5
    assert result.busy_spread > 1.3
