"""E6 benchmark: regenerate the §5.2 middleware-overhead numbers."""

from repro.experiments import overhead


def test_bench_overhead(benchmark, show_report):
    result = benchmark(overhead.run)
    show_report(overhead.render(result))

    # paper: initiation 20.8 ms, per-simulation 70.6 ms, total ~7 s
    assert abs(result.init_time_ms - 20.8) < 1.0
    assert abs(result.per_request_overhead_ms - 70.6) < 3.0
    assert abs(result.total_overhead_s - 7.0) < 1.0
    assert result.overhead_fraction < 1e-4
