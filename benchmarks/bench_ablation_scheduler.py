"""E7 benchmark: the plug-in scheduler ablation (the paper's future work)."""

from repro.experiments import ablation_scheduler


def test_bench_ablation_scheduler(benchmark, show_report):
    result = benchmark.pedantic(ablation_scheduler.run, rounds=1, iterations=1)
    show_report(ablation_scheduler.render(result))

    # the MCT plug-in beats the default policy's makespan
    assert result.improvement_over_default("mct") > 0.05
    # and balances per-SeD busy time better
    assert result.busy_spread("mct") < result.busy_spread("default")
    # the fastest-node-only baseline is catastrophically worse
    spans = result.part2_makespans()
    assert spans["fastest"] > spans["default"]
