"""E9 benchmark: Figure 3 analogue — zoom re-simulation of a halo.

A real two-step zoom; the assertions are the figure's content: the region
around the chosen halo gains resolution, and the halo re-forms there.
"""

from repro.experiments import figure3_zoom


def test_bench_figure3_zoom(benchmark, show_report):
    result = benchmark.pedantic(figure3_zoom.run, rounds=1, iterations=1)
    show_report(figure3_zoom.render(result))

    # mass resolution in the Lagrangian volume improves by exactly 8^levels
    assert result.mass_resolution_gain == result.expected_gain
    # the halo region holds more particles and sits where the parent put it
    # (within ~one coarse cell: a one-level PM zoom, not full AMR)
    assert result.particle_boost > 1.5
    assert result.center_offset < 1.5 / 16
