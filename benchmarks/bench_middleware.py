"""Middleware micro-benchmarks + scaling ablations.

* finding-time scaling with the number of SeDs per cluster (hierarchy
  fan-out): the agent tree collects estimates in parallel, so finding time
  should grow sub-linearly;
* Hilbert vs slab decomposition communication volume (the §3 partitioning
  choice), as an ablation bench.
"""

import os
import statistics

import numpy as np
import pytest

from repro.core import ProfileDesc, deploy_paper_hierarchy, scalar_desc
from repro.core.data import BaseType
from repro.platform import ClusterSpec, build_grid5000
from repro.ramses import decompose, exchange_matrix, slab_ranks
from repro.sim import Engine

#: REPRO_BENCH_QUICK=1 shrinks every workload so the whole module runs in
#: seconds — CI uses it as a smoke test that the benchmarks still execute;
#: the numbers it produces are not meaningful measurements.
QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
FANOUTS = (1, 2) if QUICK else (1, 2, 4, 8)
N_PROBE_CALLS = 3 if QUICK else 10
N_PARTICLES = (2000, 800) if QUICK else (9000, 3000)


def _measure_finding_time(n_seds_per_cluster: int) -> float:
    specs = [
        ClusterSpec("site0", "c0", "opteron-250", 16 * (n_seds_per_cluster + 1),
                    n_seds=n_seds_per_cluster),
        ClusterSpec("site1", "c1", "opteron-248", 16 * (n_seds_per_cluster + 1),
                    n_seds=n_seds_per_cluster),
    ]
    engine = Engine()
    dep = deploy_paper_hierarchy(build_grid5000(engine, cluster_specs=specs))
    desc = ProfileDesc("probe", 0, 0, 1)
    desc.set_arg(0, scalar_desc(BaseType.INT))
    desc.set_arg(1, scalar_desc(BaseType.INT))

    def solve(profile, ctx):
        yield from ctx.execute(0.01)
        profile.parameter(1).set(0)
        return 0

    for sed in dep.seds:
        sed.add_service(desc, solve)
    dep.launch_all()
    client = dep.client

    def run():
        client.initialize({"MA_name": "MA"})
        for i in range(N_PROBE_CALLS):
            profile = desc.instantiate()
            profile.parameter(0).set(i)
            profile.parameter(1).set(None)
            yield from client.call(profile)

    engine.run_process(run())
    return statistics.mean(dep.tracer.finding_times("probe"))


def test_bench_finding_time_scaling(benchmark, show_report):
    """Estimate collection is parallel: 8x the SeDs costs < 2x the time."""
    times = benchmark.pedantic(
        lambda: {n: _measure_finding_time(n) for n in FANOUTS},
        rounds=1, iterations=1)
    lines = ["finding time vs SeDs per cluster (parallel estimate fan-out):"]
    for n, t in times.items():
        lines.append(f"  {2 * n:2d} SeDs: {t * 1e3:6.2f} ms")
    show_report("\n".join(lines))
    assert times[FANOUTS[-1]] < 2.0 * times[FANOUTS[0]]


def test_bench_decomposition_ablation(benchmark, show_report):
    """Peano-Hilbert vs slab: boundary-exchange volume (lower is better)."""
    rng = np.random.default_rng(5)
    # mildly clustered distribution, like an evolved snapshot
    uniform = rng.random((N_PARTICLES[0], 3))
    clump = np.mod(0.5 + 0.1 * rng.standard_normal((N_PARTICLES[1], 3)), 1.0)
    x = np.vstack([uniform, clump])
    ncpu = 16

    def measure():
        hilbert = decompose(x, ncpu).rank_of_positions(x)
        slab = slab_ranks(x, ncpu)
        return (int(exchange_matrix(hilbert, x, ncpu).sum()),
                int(exchange_matrix(slab, x, ncpu).sum()))

    comm_hilbert, comm_slab = benchmark(measure)
    show_report(
        "domain-decomposition ablation (boundary exchange proxy, lower wins):\n"
        f"  Peano-Hilbert: {comm_hilbert}\n"
        f"  slab:          {comm_slab}\n"
        f"  ratio:         {comm_slab / comm_hilbert:.2f}x in favour of Hilbert")
    assert comm_hilbert < comm_slab
