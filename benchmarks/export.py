"""Record benchmark results as ``BENCH_<name>.json`` and gate regressions.

Two roles, one file format:

* ``python benchmarks/export.py --bench engine`` runs
  ``pytest benchmarks/bench_engine.py --benchmark-only`` and folds the
  pytest-benchmark report into ``BENCH_engine.json`` at the repo root —
  per benchmark ``min``/``mean`` seconds, ``rounds``, plus any
  ``extra_info`` the benchmark recorded (events/sec, efficiency, ...),
  tagged with the heap implementation that produced it.
* ``--check`` additionally compares the fresh ``min`` times against the
  committed baseline of the same name and exits non-zero when any
  benchmark ran more than ``--threshold`` (default 2.0) times slower —
  the CI regression gate.

CI runs both in quick mode (``REPRO_BENCH_QUICK=1``), comparing against a
committed quick-mode baseline so the gate compares like with like.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fields copied per benchmark from the pytest-benchmark report.
_STATS_FIELDS = ("min", "mean", "rounds")


def run_bench(name: str) -> dict:
    """Run one benchmark module; return the folded results document."""
    bench_file = REPO_ROOT / "benchmarks" / f"bench_{name}.py"
    if not bench_file.exists():
        raise SystemExit(f"no such benchmark module: {bench_file}")
    with tempfile.TemporaryDirectory() as tmp:
        report_path = Path(tmp) / "report.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(bench_file),
             "--benchmark-only", f"--benchmark-json={report_path}", "-q"],
            cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        report = json.loads(report_path.read_text())

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.ramses.physcore import PHYS_IMPL
    from repro.sim.simcore import HEAP_IMPL

    doc = {
        "meta": {
            "bench": name,
            "heap_impl": HEAP_IMPL,
            "phys_impl": PHYS_IMPL,
            "quick": bool(os.environ.get("REPRO_BENCH_QUICK")),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "benchmarks": {},
    }
    for bench in report["benchmarks"]:
        entry = {field: bench["stats"][field] for field in _STATS_FIELDS}
        if bench.get("extra_info"):
            entry["extra_info"] = bench["extra_info"]
        doc["benchmarks"][bench["name"]] = entry
    return doc


def _delta_table(rows: list) -> str:
    """Fixed-width per-shape delta table: one row per benchmark name."""
    headers = ("benchmark", "baseline", "current", "ratio", "delta", "status")
    cells = [headers]
    for name, base_min, new_min, ratio, status in rows:
        if base_min is None:
            cells.append((name, "-", f"{new_min * 1e3:.2f}ms", "-", "-", status))
        else:
            cells.append((name, f"{base_min * 1e3:.2f}ms",
                          f"{new_min * 1e3:.2f}ms", f"{ratio:.2f}x",
                          f"{(ratio - 1.0) * 100.0:+.1f}%", status))
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def check_regression(doc: dict, baseline_path: Path, threshold: float) -> int:
    """Compare fresh min times to the baseline; return the exit code."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; regression check skipped.")
        print(f"to arm the gate: run `python benchmarks/export.py "
              f"--bench {doc['meta']['bench']}` on a known-good commit "
              f"and commit {baseline_path.name}")
        return 0
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("meta", {}).get("quick") != doc["meta"]["quick"]:
        print("baseline and run disagree on quick mode; refusing to compare")
        return 1
    rows = []
    failures = []
    for name, entry in doc["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            rows.append((name, None, entry["min"], None, "NEW (not in baseline)"))
            continue
        ratio = entry["min"] / base["min"]
        status = "OK" if ratio <= threshold else "REGRESSION"
        rows.append((name, base["min"], entry["min"], ratio, status))
        if ratio > threshold:
            failures.append(name)
    print(_delta_table(rows))
    if failures:
        print(f"FAILED: {len(failures)} benchmark(s) more than "
              f"{threshold:.1f}x slower than baseline: {', '.join(failures)}")
        return 1
    print("regression check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="engine",
                        help="benchmark module to run (bench_<name>.py)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<name>.json at "
                             "the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail when slower than the committed baseline")
    parser.add_argument("--baseline", default=None,
                        help="baseline to compare against with --check "
                             "(default: the committed output path)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max allowed slowdown ratio (default 2.0)")
    args = parser.parse_args(argv)

    default_path = REPO_ROOT / f"BENCH_{args.bench}.json"
    out_path = Path(args.out) if args.out else default_path
    baseline_path = Path(args.baseline) if args.baseline else default_path

    doc = run_bench(args.bench)
    code = 0
    if args.check:
        code = check_regression(doc, baseline_path, args.threshold)
        if args.out is None:
            # Don't clobber the committed baseline during a gate run.
            out_path = default_path.with_suffix(".ci.json")
    out_path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
