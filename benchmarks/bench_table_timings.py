"""E1 benchmark: regenerate the §5.2 headline timings (paper vs measured)."""

from repro.experiments import table_timings
from repro.services import (
    PAPER_PART1_SECONDS,
    PAPER_PART2_MEAN_SECONDS,
    PAPER_TOTAL_SECONDS,
)


def test_bench_table_timings(benchmark, show_report):
    result = benchmark(table_timings.run)
    show_report(table_timings.render(result))

    assert abs(result.part1_seconds - PAPER_PART1_SECONDS) < 0.02 * PAPER_PART1_SECONDS
    assert abs(result.part2_mean_seconds
               - PAPER_PART2_MEAN_SECONDS) < 0.02 * PAPER_PART2_MEAN_SECONDS
    assert abs(result.total_seconds - PAPER_TOTAL_SECONDS) < 0.05 * PAPER_TOTAL_SECONDS
    assert result.sequential_hours > 141.0
