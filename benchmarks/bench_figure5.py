"""E4/E5 benchmark: regenerate Figure 5 (finding time + latency)."""

from repro.experiments import figure5


def test_bench_figure5(benchmark, show_report):
    result = benchmark(figure5.run)
    show_report(figure5.render(result))

    # E4: finding time low, nearly constant, ~49.8 ms average
    assert abs(result.finding_mean_ms - 49.8) < 2.0
    assert result.finding_cv < 0.10
    # E5: latency rises by orders of magnitude (queueing), log-scale shape
    assert result.latency_growth_decades > 4.0
    assert result.first_wave_latency_ms < 500.0
