"""Figure 1 benchmark: deploy + validate the full hierarchy."""

from repro.experiments import figure1_architecture


def test_bench_figure1_architecture(benchmark, show_report):
    result = benchmark(figure1_architecture.run)
    show_report(figure1_architecture.render(result))

    assert result.n_agents == 7        # 1 MA + 6 LAs (§5.1)
    assert result.n_seds == 11
    services = result.services_per_sed()
    assert all(v == ["ramsesZoom1", "ramsesZoom2"] for v in services.values())
